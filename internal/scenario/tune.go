package scenario

import (
	"fmt"
	"time"

	"repro/avstack"
	"repro/internal/autoware"
	"repro/internal/faults"
	"repro/internal/hdmap"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/world"
)

// e2eBudgetMS is the paper's end-to-end latency budget the tuner
// optimizes against.
const e2eBudgetMS = 100.0

// tuneMinSamplesFrac is the feasibility floor: a candidate keeping
// fewer than this fraction of the baseline's end-to-end samples is
// rejected regardless of its p99 (a schedule must not win by shedding
// the traffic it was meant to serve).
const tuneMinSamplesFrac = 0.5

// TuneCandidate is one evaluated schedule in a tuning report.
type TuneCandidate struct {
	Name        string `json:"name"`
	Priorities  bool   `json:"priorities"`
	ShedMS      int64  `json:"shed_budget_ms"`
	MaxInflight int    `json:"max_inflight"`
	QueueDepth  int    `json:"queue_depth"`
	// Path is the worst (highest-p99) computation path under this
	// schedule; P50/P99 are that path's latencies in milliseconds.
	Path     string  `json:"path"`
	P50      float64 `json:"p50_ms"`
	P99      float64 `json:"p99_ms"`
	Samples  int     `json:"samples"`
	Feasible bool    `json:"feasible"`
	Error    string  `json:"error,omitempty"`
}

// TuneReport is the auto-tuner's output, serialized to BENCH_sched.json
// by `characterize -exp tune`.
type TuneReport struct {
	Scenario        string  `json:"scenario"`
	DurationSeconds float64 `json:"duration_s"`
	SearchSeed      uint64  `json:"search_seed"`
	BudgetMS        float64 `json:"budget_ms"`
	// Baseline is candidate 0: the scenario with no scheduler attached.
	Baseline TuneCandidate `json:"baseline"`
	// Best is the feasible candidate with the lowest worst-path p99;
	// never worse than Baseline (the baseline is always feasible and
	// deterministic reruns reproduce it exactly).
	Best              TuneCandidate   `json:"best"`
	P99ImprovementPct float64         `json:"p99_improvement_pct"`
	Candidates        []TuneCandidate `json:"candidates"`
}

// Tune runs the deterministic auto-tuner on a scenario's faulted leg:
// profile criticality on a clean drive, then evaluate the seeded
// candidate schedules and report the one minimizing worst-path p99.
// Building the HD map dominates wall time; see TuneWithEnv for reuse.
func Tune(spec Spec, det autoware.Detector, duration time.Duration, searchSeed uint64) (*TuneReport, error) {
	scen := world.NewScenario(world.DefaultScenarioConfig())
	mc := hdmap.DefaultConfig()
	mc.ScanSpacing = 10
	m, err := hdmap.Build(scen, mc)
	if err != nil {
		return nil, fmt.Errorf("scenario: building map: %w", err)
	}
	return TuneWithEnv(scen, m, spec, det, duration, searchSeed)
}

// TuneWithEnv is Tune over an existing environment. It runs one clean
// profiling drive (lineage chains → criticality), then one faulted
// drive per candidate: injector attached, scheduler attached with the
// candidate's knobs (none for the Disabled baseline), identical
// duration. Everything underneath is deterministic, so the same inputs
// always elect the same winner.
func TuneWithEnv(scen *world.Scenario, m *hdmap.Map, spec Spec, det autoware.Detector, duration time.Duration, searchSeed uint64) (*TuneReport, error) {
	if err := spec.Schedule().Validate(); err != nil {
		return nil, err
	}
	if min := spec.MinDuration(); duration < min {
		return nil, fmt.Errorf("scenario: duration %v shorter than scenario horizon %v", duration, min)
	}

	profile, err := buildStack(scen, m, det, false, 0, spec.worldConfig())
	if err != nil {
		return nil, err
	}
	chains := avstack.AttachChainLog(profile)
	profile.Run(duration)
	crit := sched.Analyze(chains.Chains())

	cands := sched.DefaultCandidates(searchSeed, platform.DefaultCPUConfig().Cores)
	best, outcomes, err := sched.Tune(cands, tuneMinSamplesFrac, func(c sched.Candidate) (sched.Eval, error) {
		return evalCandidate(scen, m, spec, det, duration, crit, c)
	})
	if err != nil {
		return nil, err
	}

	rep := &TuneReport{
		Scenario:        spec.Name,
		DurationSeconds: duration.Seconds(),
		SearchSeed:      searchSeed,
		BudgetMS:        e2eBudgetMS,
	}
	for i, o := range outcomes {
		tc := toTuneCandidate(o)
		rep.Candidates = append(rep.Candidates, tc)
		if i == 0 {
			rep.Baseline = tc
		}
		if i == best {
			rep.Best = tc
		}
	}
	if rep.Baseline.P99 > 0 {
		rep.P99ImprovementPct = 100 * (rep.Baseline.P99 - rep.Best.P99) / rep.Baseline.P99
	}
	return rep, nil
}

// evalCandidate runs the spec's faulted leg under one candidate
// schedule and measures the worst path. Sched specs are tuned from
// scratch: the candidate's knobs replace (not compose with) whatever
// Spec.Sched pins.
func evalCandidate(scen *world.Scenario, m *hdmap.Map, spec Spec, det autoware.Detector, duration time.Duration, crit *sched.Criticality, c sched.Candidate) (sched.Eval, error) {
	depth := 0
	if !c.Disabled {
		depth = c.Knobs.QueueDepth
	}
	st, err := buildStack(scen, m, det, spec.Guard, depth, spec.worldConfig())
	if err != nil {
		return sched.Eval{}, err
	}
	inj, err := faults.New(spec.Schedule())
	if err != nil {
		return sched.Eval{}, err
	}
	inj.Attach(st.Executor, st.Bus)
	if spec.Supervise {
		if _, err := avstack.AttachDefaultSupervision(st, spec.Seed); err != nil {
			return sched.Eval{}, err
		}
	}
	if spec.ShedBudget > 0 {
		st.Executor.ShedBudget = spec.ShedBudget
	}
	if !c.Disabled {
		avstack.AttachScheduler(st, crit, c.Knobs)
	}
	st.Run(duration)

	// Worst path by p99 (ties to name order — PathNames is sorted), with
	// the sample floor taken over every path's total so a schedule
	// cannot hide a path it starved.
	var ev sched.Eval
	for _, p := range st.Recorder.PathNames() {
		s := st.Recorder.PathLatency(p)
		ev.Samples += s.Count
		if s.Count == 0 {
			continue
		}
		if ev.Path == "" || s.P99 > ev.P99 {
			ev.Path, ev.P50, ev.P99 = p, s.Median, s.P99
		}
	}
	return ev, nil
}

func toTuneCandidate(o sched.Outcome) TuneCandidate {
	tc := TuneCandidate{
		Name:        o.Candidate.Name,
		Priorities:  o.Candidate.Knobs.UsePriorities,
		ShedMS:      o.Candidate.Knobs.ShedBudget.Milliseconds(),
		MaxInflight: o.Candidate.Knobs.MaxInflight,
		QueueDepth:  o.Candidate.Knobs.QueueDepth,
		Path:        o.Eval.Path,
		P50:         o.Eval.P50,
		P99:         o.Eval.P99,
		Samples:     o.Eval.Samples,
		Feasible:    o.Feasible,
	}
	if o.Err != nil {
		tc.Error = o.Err.Error()
	}
	return tc
}
