package scenario

import (
	"testing"
	"time"

	"repro/internal/autoware"
	"repro/internal/hdmap"
	"repro/internal/parallel"
	"repro/internal/world"
)

// TestGeneratedRegistry pins the contract of the pinned-scenario
// registry: at least one search winner is committed, every spec
// carries its generated world, resolves through ByName, appears in
// Names after the builtins, and fits the golden drive horizon.
func TestGeneratedRegistry(t *testing.T) {
	specs, err := Generated()
	if err != nil {
		t.Fatalf("Generated() = %v; every committed pin must parse", err)
	}
	if len(specs) == 0 {
		t.Fatal("no generated scenarios embedded; expected at least the first pinned search winner")
	}
	names := Names()
	builtinCount := len(builtins())
	if len(names) != builtinCount+len(specs) {
		t.Fatalf("Names() has %d entries, want %d builtins + %d generated", len(names), builtinCount, len(specs))
	}
	for i, spec := range specs {
		if spec.World == nil {
			t.Fatalf("%s: generated spec without a world", spec.Name)
		}
		if err := spec.World.Validate(); err != nil {
			t.Fatalf("%s: pinned world invalid: %v", spec.Name, err)
		}
		if !spec.Guard || !spec.Supervise {
			t.Fatalf("%s: generated specs must measure the hardened stack (guard+supervise)", spec.Name)
		}
		if min := spec.MinDuration(); min > transportGoldenDuration {
			t.Fatalf("%s: horizon %v exceeds the golden drive %v", spec.Name, min, transportGoldenDuration)
		}
		got, err := ByName(spec.Name)
		if err != nil {
			t.Fatalf("ByName(%s): %v", spec.Name, err)
		}
		if got.Name != spec.Name || *got.World != *spec.World {
			t.Fatalf("%s: ByName returned a different spec", spec.Name)
		}
		if names[builtinCount+i] != spec.Name {
			t.Fatalf("Names()[%d] = %s, want %s (generated after builtins)", builtinCount+i, names[builtinCount+i], spec.Name)
		}
	}
}

// TestGeneratedScenarioWorkerInvariance extends the worker-invariance
// contract to procedurally generated worlds: for three sampled seeds,
// a full-stack drive through the generated scenario must produce a
// bit-exact latency fingerprint on 1, 2 and 8 workers. Generated
// worlds exercise split RNG streams, pedestrian bursts and weather
// noise — none of which may leak host scheduling into virtual time.
func TestGeneratedScenarioWorkerInvariance(t *testing.T) {
	const duration = 6 * time.Second // short drives: the compact space keeps cities small
	for _, seed := range []uint64{11, 22, 33} {
		cfg, err := world.Generate(world.CompactSpace(), seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		scen, err := world.BuildScenario(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		mc := hdmap.DefaultConfig()
		mc.ScanSpacing = 10
		m, err := hdmap.Build(scen, mc)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		run := func(workers int) string {
			prev := parallel.MaxWorkers()
			parallel.SetMaxWorkers(workers)
			defer parallel.SetMaxWorkers(prev)
			st, err := buildStack(scen, m, autoware.DetectorSSD300, true, 0, cfg)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			st.Run(duration)
			return st.Recorder.Fingerprint()
		}

		ref := run(1)
		for _, workers := range []int{2, 8} {
			if got := run(workers); got != ref {
				t.Errorf("seed %d: fingerprint diverged between 1 and %d workers", seed, workers)
			}
		}
	}
}
