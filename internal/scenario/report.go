package scenario

import (
	"fmt"
	"io"
)

// WriteReport renders the chaos report. Every quantity derives from the
// deterministic simulation, so the same scenario, seed and duration
// produce byte-identical output — the property the regression suite
// pins.
func (r *Result) WriteReport(w io.Writer) {
	fmt.Fprintf(w, "=== chaos scenario: %s ===\n", r.Spec.Name)
	fmt.Fprintf(w, "%s\n", r.Spec.Description)
	fmt.Fprintf(w, "detector=%s duration=%v seed=0x%X\n", r.Detector, r.Duration, r.Spec.Seed)

	fmt.Fprintln(w, "\nschedule:")
	for _, f := range r.Spec.Faults {
		fmt.Fprintf(w, "  %s\n", f)
	}

	fmt.Fprintln(w, "\ninjected events:")
	if len(r.Events) == 0 {
		fmt.Fprintln(w, "  (none applied)")
	}
	for _, e := range r.Events {
		fmt.Fprintf(w, "  %-10s %-34s count=%d\n", e.Kind, e.Target, e.Count)
	}

	fmt.Fprintln(w, "\nnode latency (ms), baseline vs faulted:")
	fmt.Fprintf(w, "  %-24s %9s %9s | %9s %9s | %7s %7s\n",
		"node", "base p50", "base p99", "flt p50", "flt p99", "n base", "n flt")
	for _, ns := range r.Nodes {
		fmt.Fprintf(w, "  %-24s %9.3f %9.3f | %9.3f %9.3f | %7d %7d\n",
			ns.Node, ns.Baseline.Median, ns.Baseline.P99,
			ns.Faulted.Median, ns.Faulted.P99,
			ns.Baseline.Count, ns.Faulted.Count)
	}

	fmt.Fprintln(w, "\ncomputation paths (ms), baseline vs faulted:")
	for _, ps := range r.Paths {
		fmt.Fprintf(w, "  %-24s %9.3f %9.3f | %9.3f %9.3f | %7d %7d\n",
			ps.Path, ps.Baseline.Median, ps.Baseline.P99,
			ps.Faulted.Median, ps.Faulted.P99,
			ps.Baseline.Count, ps.Faulted.Count)
	}

	fmt.Fprintln(w, "\ndegraded intervals (faulted run):")
	if len(r.Degraded) == 0 {
		fmt.Fprintln(w, "  (none)")
	}
	for _, d := range r.Degraded {
		end := "open"
		if d.End > 0 {
			end = d.End.String()
		}
		fmt.Fprintf(w, "  %-24s policy=%-10s [%v, %s) substituted=%d\n",
			d.Node, d.Policy, d.Start, end, d.Substituted)
	}

	fmt.Fprintln(w, "\nmessage drops (faulted run):")
	if len(r.Drops) == 0 {
		fmt.Fprintln(w, "  (none)")
	}
	for _, d := range r.Drops {
		fmt.Fprintf(w, "  %-34s -> %-24s arrived=%-6d dropped=%-6d rate=%.3f\n",
			d.Topic, d.Subscriber, d.Arrived, d.Dropped, d.Rate)
	}

	fmt.Fprintln(w, "\nsupervised outages (faulted run):")
	if len(r.Outages) == 0 {
		fmt.Fprintln(w, "  (none)")
	}
	for _, o := range r.Outages {
		end := "open"
		if o.Recovered > 0 {
			end = o.Recovered.String()
		}
		fmt.Fprintf(w, "  %-24s cause=%-12s [%v, %s) restarts=%d lost=%d restored=%t ckpt_age=%v rechk=%t\n",
			o.Node, o.Cause, o.Detected, end,
			o.Restarts, o.FramesLost, o.Restored, o.CheckpointAge, o.Recheckpointed)
	}

	fmt.Fprintln(w, "\nfault-induced message losses (faulted run):")
	if len(r.Losses) == 0 {
		fmt.Fprintln(w, "  (none)")
	}
	for _, l := range r.Losses {
		fmt.Fprintf(w, "  %-10s %-34s count=%-6d window=[%v, %v]\n",
			l.Kind, l.Target, l.Count, l.First, l.Last)
	}

	shed := false
	for _, t := range r.Topics {
		if t.Shed > 0 {
			shed = true
			break
		}
	}
	fmt.Fprintln(w, "\ndeadline-shed frames (faulted run):")
	if !shed {
		fmt.Fprintln(w, "  (none)")
	}
	for _, t := range r.Topics {
		if t.Shed == 0 {
			continue
		}
		fmt.Fprintf(w, "  %-34s shed=%-6d delivered=%-6d\n", t.Topic, t.Shed, t.Messages)
	}

	fmt.Fprintln(w, "\nintegrity quarantine (faulted run):")
	if len(r.Integrity) == 0 {
		fmt.Fprintln(w, "  (none)")
	}
	for _, ev := range r.Integrity {
		fmt.Fprintf(w, "  %-34s cause=%-18s at=%-8s count=%-6d window=[%v, %v]\n",
			ev.Topic, ev.Cause, ev.Point, ev.Count, ev.First, ev.Last)
	}
	for _, t := range r.Topics {
		if t.Quarantined == 0 {
			continue
		}
		fmt.Fprintf(w, "  %-34s quarantined=%-6d delivered=%-6d\n", t.Topic, t.Quarantined, t.Messages)
	}
}
