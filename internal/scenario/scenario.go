// Package scenario is the chaos-test harness: it runs the full stack
// twice over the same environment — once fault-free, once under a
// named, seeded fault schedule with the graceful-degradation watchdog
// attached — and reports the resulting latency distributions side by
// side. Because every layer underneath is deterministic, the same
// scenario, seed and duration always produce a byte-identical report,
// which is what turns the paper's accidental tail phenomena (contention
// inflation, message drops, stale inputs) into regression-testable
// behaviors.
package scenario

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/avstack"
	"repro/internal/autoware"
	"repro/internal/faults"
	"repro/internal/hdmap"
	"repro/internal/mathx"
	"repro/internal/ros"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/world"
)

// Spec is one named chaos scenario: a fault schedule plus the watch
// policies that should degrade gracefully under it.
type Spec struct {
	Name        string
	Description string
	// Seed drives every stochastic fault decision.
	Seed   uint64
	Faults []faults.Fault
	// Watch lists the graceful-degradation policies to install on the
	// faulted run (the baseline never needs them).
	Watch []avstack.WatchPolicy
	// WatchPeriod overrides the watchdog check cadence (default 100 ms).
	WatchPeriod time.Duration
	// Supervise attaches the default supervision layer (restart with
	// backoff + checkpoint restore) to the faulted run, seeded from Seed.
	Supervise bool
	// ShedBudget enables deadline-aware load shedding on the faulted
	// run: queued frames older than the budget are shed at dispatch.
	ShedBudget time.Duration
	// Guard attaches the input-integrity layer (payload validation +
	// time sanitization + quarantine) to the faulted run.
	Guard bool
	// Sched, when non-nil, attaches the critical-path deadline scheduler
	// to the faulted run with these knobs. The criticality profile is
	// measured on the fault-free baseline leg of the same drive (a
	// lineage ChainLog observes it without perturbing a single sample),
	// so the priorities the faulted run schedules with come from the
	// drive it is actually defending.
	Sched *sched.Knobs
	// World, when non-nil, replaces the scripted default drive with a
	// procedurally generated parameterization (see world.Generate and
	// internal/search): traffic mix, pedestrian bursts, weather, city
	// topology. Run builds the environment from it; RunWithEnv callers
	// must pass an environment built from the same config.
	World *world.ScenarioConfig
}

// worldConfig resolves the drive parameterization: the spec's generated
// world if set, else the scripted default.
func (s Spec) worldConfig() world.ScenarioConfig {
	if s.World != nil {
		return *s.World
	}
	return world.DefaultScenarioConfig()
}

// Schedule bundles the spec's faults with its seed.
func (s Spec) Schedule() faults.Schedule {
	return faults.Schedule{Seed: s.Seed, Faults: s.Faults}
}

// MinDuration returns the shortest drive that covers every fault window
// with a second of post-fault recovery headroom.
func (s Spec) MinDuration() time.Duration {
	var latest time.Duration
	for _, f := range s.Faults {
		if f.End() > latest {
			latest = f.End()
		}
	}
	return latest + time.Second
}

// Builtin scenario names, in report order.
const (
	NameContention   = "contention"
	NameCameraStall  = "camera-stall"
	NameLidarDrop    = "lidar-drop"
	NameSensorJitter = "sensor-jitter"
	NameQueueBurst   = "queue-burst"
	NameCrashRecover = "crash-recover"
	NameOverloadShed = "overload-shed"
	NameCorruptLidar = "corrupt-lidar"
	NameClockSkew    = "clock-skew"
	NameDupStorm     = "dup-storm"
	// NameContentionTuned is the contention scenario re-run with the
	// tuner's winning schedule — the F1-closure regression pin.
	NameContentionTuned = "contention-tuned"
)

// ContentionTunedKnobs is the winning schedule from the seeded tuner
// search (`characterize -exp tune -duration 12s -seed 1`, recorded in
// BENCH_sched.json), pinned here so the contention-tuned scenario is a
// stable regression rather than a fresh search per run. The search's
// top two candidates — this one and its priorities-off twin — are
// separated by 2 µs of p99 (88.2898 vs 88.2879 ms, against a 132.26 ms
// baseline); we pin the criticality-profiled variant for its 0.8 ms
// better p50 and so the profiled tie-break stays under regression.
func ContentionTunedKnobs() sched.Knobs {
	return sched.Knobs{
		UsePriorities: true,
		ShedBudget:    80 * time.Millisecond,
		MaxInflight:   3,
	}
}

// visionObjectsTopic is the vision detector's output (watched by the
// camera-stall scenario).
const visionObjectsTopic = "/detection/image_detector/objects"

// builtins returns the named scenario registry. Fault windows open at
// 4 s (past the 3 s measurement warmup) so both baseline and faulted
// measurements span identical drive intervals.
func builtins() []Spec {
	return []Spec{
		{
			Name: NameContention,
			Description: "co-located best-effort CPU work competes with the stack " +
				"(Finding 1: shared-resource contention inflates tail latency)",
			Seed: 0xF1A5,
			Faults: []faults.Fault{{
				Kind: faults.KindContention, Start: 4 * time.Second, Duration: 5 * time.Second,
				Workers: 2, Load: 4e-3, Bandwidth: 2e9,
			}},
		},
		{
			Name: NameCameraStall,
			Description: "the vision detector hangs mid-drive; the watchdog " +
				"substitutes last-good detections until it recovers",
			Seed: 0x57A11,
			Faults: []faults.Fault{{
				Kind: faults.KindStall, Node: autoware.VisionNodeName,
				Start: 4 * time.Second, Duration: 3 * time.Second,
				Delay: 900 * time.Millisecond,
			}},
			Watch: []avstack.WatchPolicy{{
				Node:    autoware.VisionNodeName,
				Topic:   visionObjectsTopic,
				Timeout: 400 * time.Millisecond,
				Policy:  avstack.FallbackLastGood,
			}},
		},
		{
			Name: NameLidarDrop,
			Description: "a third of LiDAR frames vanish in transport " +
				"(lossy driver; downstream rates and drops shift)",
			Seed: 0xD20B,
			Faults: []faults.Fault{{
				Kind: faults.KindDrop, Topic: "/points_raw",
				Start: 4 * time.Second, Duration: 5 * time.Second, Prob: 0.35,
			}},
		},
		{
			Name: NameSensorJitter,
			Description: "sensor publication timing wanders (clock drift / " +
				"bursty transport); pipeline phase alignment degrades",
			Seed: 0x717E2,
			Faults: []faults.Fault{
				{
					Kind: faults.KindJitter, Topic: "/points_raw",
					Start: 4 * time.Second, Duration: 5 * time.Second,
					Sigma: 30 * time.Millisecond,
				},
				{
					Kind: faults.KindJitter, Topic: "/image_raw",
					Start: 4 * time.Second, Duration: 5 * time.Second,
					Sigma: 30 * time.Millisecond,
				},
			},
		},
		{
			Name: NameQueueBurst,
			Description: "a runaway publisher floods /points_raw, saturating " +
				"subscriber queues into drop-oldest eviction (Table III on demand)",
			Seed: 0xB025,
			Faults: []faults.Fault{{
				Kind: faults.KindBurst, Topic: "/points_raw",
				Start: 4 * time.Second, Duration: 4 * time.Second, Rate: 60,
			}},
		},
		{
			Name: NameCrashRecover,
			Description: "the tracker process crashes mid-drive; the supervisor " +
				"restarts it with backoff and restores the last state checkpoint",
			Seed: 0xC4A54,
			Faults: []faults.Fault{{
				Kind: faults.KindCrash, Node: autoware.TrackerNodeName,
				Start: 4 * time.Second, Duration: 2500 * time.Millisecond,
			}},
			Supervise: true,
		},
		{
			Name: NameOverloadShed,
			Description: "the queue-burst flood again, but with deadline-aware " +
				"shedding: frames past the 100 ms budget are dropped at dispatch " +
				"instead of amplifying queue delay",
			Seed: 0xB025,
			Faults: []faults.Fault{{
				Kind: faults.KindBurst, Topic: "/points_raw",
				Start: 4 * time.Second, Duration: 4 * time.Second, Rate: 60,
			}},
			ShedBudget: 100 * time.Millisecond,
		},
		{
			Name: NameCorruptLidar,
			Description: "a tenth of LiDAR frames arrive bit-flipped (NaN/Inf " +
				"points); the integrity guard quarantines every one before " +
				"it can poison downstream state",
			Seed: 0xC0227,
			Faults: []faults.Fault{{
				Kind: faults.KindCorrupt, Topic: "/points_raw",
				Start: 4 * time.Second, Duration: 5 * time.Second, Prob: 0.10,
			}},
			Guard: true,
		},
		{
			Name: NameClockSkew,
			Description: "sensor clocks break both ways — LiDAR stamps rewind " +
				"400 ms, camera stamps jump 400 ms ahead; the guard's time " +
				"sanitization rejects both against its per-topic clock model",
			Seed: 0x5CE3,
			Faults: []faults.Fault{
				{
					Kind: faults.KindSkew, Topic: "/points_raw",
					Start: 4 * time.Second, Duration: 5 * time.Second,
					Prob: 0.25, Skew: -400 * time.Millisecond,
				},
				{
					Kind: faults.KindSkew, Topic: "/image_raw",
					Start: 4 * time.Second, Duration: 5 * time.Second,
					Prob: 0.25, Skew: 400 * time.Millisecond,
				},
			},
			Guard: true,
		},
		{
			Name: NameDupStorm,
			Description: "a duplicating driver delivers every LiDAR frame three " +
				"times; the guard's dup window drops the copies so queues see " +
				"each stamp exactly once",
			Seed: 0xD0D0,
			Faults: []faults.Fault{{
				Kind: faults.KindDup, Topic: "/points_raw",
				Start: 4 * time.Second, Duration: 4 * time.Second,
				Prob: 1.0, Copies: 2,
			}},
			Guard: true,
		},
		func() Spec {
			k := ContentionTunedKnobs()
			return Spec{
				Name: NameContentionTuned,
				Description: "the contention squeeze again, but scheduled: critical-path " +
					"priorities, deadline shedding and an admission cap close the " +
					"tail the plain contention scenario reproduces (F1 closure)",
				Seed: 0xF1A5,
				Faults: []faults.Fault{{
					Kind: faults.KindContention, Start: 4 * time.Second, Duration: 5 * time.Second,
					Workers: 2, Load: 4e-3, Bandwidth: 2e9,
				}},
				Sched: &k,
			}
		}(),
	}
}

// Names lists every named scenario in report order: the builtins,
// then the pinned search winners (gen-*). Generated specs that fail to
// load are omitted here (this feeds flag help text); ByName surfaces
// the load error for anyone who actually asks for one.
func Names() []string {
	specs := builtins()
	if gen, err := Generated(); err == nil {
		specs = append(specs, gen...)
	}
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}

// ByName resolves a built-in or generated scenario. A generated
// registry that fails to load is an error on lookup — a bad pin must
// surface as a per-request failure (a fleet job error), never a panic
// in the serving process.
func ByName(name string) (Spec, error) {
	for _, s := range builtins() {
		if s.Name == name {
			return s, nil
		}
	}
	gen, err := Generated()
	if err != nil {
		return Spec{}, fmt.Errorf("scenario: resolving %q: %w", name, err)
	}
	for _, s := range gen {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("scenario: unknown scenario %q (have %v)", name, Names())
}

// NodeStat pairs one node's baseline and faulted latency summaries.
type NodeStat struct {
	Node     string
	Baseline mathx.Summary
	Faulted  mathx.Summary
}

// PathStat pairs one computation path's summaries.
type PathStat struct {
	Path     string
	Baseline mathx.Summary
	Faulted  mathx.Summary
}

// Result is one completed chaos run: the same drive with and without
// the fault schedule.
type Result struct {
	Spec     Spec
	Detector autoware.Detector
	Duration time.Duration

	Nodes []NodeStat
	Paths []PathStat
	// Events counts the perturbations the injector actually applied.
	Events []faults.Event
	// Degraded lists the watchdog's degradation windows (faulted run).
	Degraded []trace.DegradedInterval
	// Drops is the faulted run's per-subscription drop table.
	Drops []ros.DropReport
	// Outages lists the supervisor's recorded node outages (faulted run;
	// empty unless the spec enables supervision).
	Outages []trace.Outage
	// Losses aggregates fault-induced message losses (drop/crash
	// verdicts the injector actually applied), distinguishing "dropped
	// by a fault" from "never produced".
	Losses []trace.FaultLoss
	// Topics is the faulted run's per-topic traffic table, including
	// deadline-shed and quarantine counts.
	Topics []ros.TopicStats
	// Integrity aggregates the guard's quarantine record (faulted run;
	// empty unless the spec enables the guard).
	Integrity []trace.IntegrityEvent
}

// NodeStat returns the stats row for one node.
func (r *Result) NodeStat(node string) (NodeStat, bool) {
	for _, ns := range r.Nodes {
		if ns.Node == node {
			return ns, true
		}
	}
	return NodeStat{}, false
}

// Run executes the scenario over a freshly built environment. Building
// the scenario's HD map dominates wall time; tests with a cached
// environment should use RunWithEnv.
func Run(spec Spec, det autoware.Detector, duration time.Duration) (*Result, error) {
	scen, err := world.BuildScenario(spec.worldConfig())
	if err != nil {
		return nil, fmt.Errorf("scenario: building world: %w", err)
	}
	mc := hdmap.DefaultConfig()
	mc.ScanSpacing = 10
	m, err := hdmap.Build(scen, mc)
	if err != nil {
		return nil, fmt.Errorf("scenario: building map: %w", err)
	}
	return RunWithEnv(scen, m, spec, det, duration)
}

// RunWithEnv executes the scenario over an existing environment: one
// fault-free baseline run, one run with the injector (and any watch
// policies) attached. Identical inputs produce identical Results.
func RunWithEnv(scen *world.Scenario, m *hdmap.Map, spec Spec, det autoware.Detector, duration time.Duration) (*Result, error) {
	return RunWithEnvContext(context.Background(), scen, m, spec, det, duration)
}

// RunWithEnvContext is RunWithEnv with cooperative cancellation: both
// drive legs advance under the context, so a fleet job deadline stops
// in-flight simulation promptly (the error wraps autoware.ErrCancelled)
// instead of leaking the vehicle until drive end. Run to completion it
// is byte-identical to RunWithEnv.
func RunWithEnvContext(ctx context.Context, scen *world.Scenario, m *hdmap.Map, spec Spec, det autoware.Detector, duration time.Duration) (*Result, error) {
	if err := spec.Schedule().Validate(); err != nil {
		return nil, err
	}
	if min := spec.MinDuration(); duration < min {
		return nil, fmt.Errorf("scenario: duration %v shorter than scenario horizon %v", duration, min)
	}

	baseline, err := buildStack(scen, m, det, false, 0, spec.worldConfig())
	if err != nil {
		return nil, err
	}
	var chains *trace.ChainLog
	if spec.Sched != nil {
		// Observer only: lineage recording never touches virtual time,
		// so the baseline report stays byte-identical with or without it.
		chains = avstack.AttachChainLog(baseline)
	}
	if err := baseline.RunContext(ctx, duration); err != nil {
		return nil, fmt.Errorf("scenario: baseline leg: %w", err)
	}

	depth := 0
	if spec.Sched != nil {
		depth = spec.Sched.QueueDepth
	}
	faulted, err := buildStack(scen, m, det, spec.Guard, depth, spec.worldConfig())
	if err != nil {
		return nil, err
	}
	inj, err := faults.New(spec.Schedule())
	if err != nil {
		return nil, err
	}
	inj.SetLossRecorder(faulted.Recorder)
	inj.Attach(faulted.Executor, faulted.Bus)
	if spec.Supervise {
		// After the injector, so the supervisor's filter runs in front
		// of it and observes its crash verdicts.
		if _, err := avstack.AttachDefaultSupervision(faulted, spec.Seed); err != nil {
			return nil, err
		}
	}
	if spec.ShedBudget > 0 {
		faulted.Executor.ShedBudget = spec.ShedBudget
	}
	if len(spec.Watch) > 0 {
		wd := avstack.NewWatchdog(faulted, avstack.WatchdogConfig{
			Period:   spec.WatchPeriod,
			Policies: spec.Watch,
		})
		wd.Attach()
	}
	if spec.Sched != nil {
		// Last, matching the hook ordering: the scheduler only ever
		// picks among candidates every layer above let through.
		avstack.AttachScheduler(faulted, sched.Analyze(chains.Chains()), *spec.Sched)
	}
	if err := faulted.RunContext(ctx, duration); err != nil {
		return nil, fmt.Errorf("scenario: faulted leg: %w", err)
	}

	return collect(spec, det, duration, baseline, faulted, inj), nil
}

// buildStack assembles one stack over the shared environment. depth > 0
// overrides the vision detector's input queue depth (the scheduler's
// QueueDepth knob; 0 keeps the stock configuration). wcfg is the drive
// parameterization the environment was built from — it must match scen,
// and it carries the weather profile BuildWithMap degrades the sensor
// suite with.
func buildStack(scen *world.Scenario, m *hdmap.Map, det autoware.Detector, guarded bool, depth int, wcfg world.ScenarioConfig) (*autoware.Stack, error) {
	cfg := autoware.DefaultConfig(det)
	cfg.Scenario = wcfg
	cfg.Guard = guarded
	if depth > 0 {
		cfg.VisionQueueDepth = depth
	}
	return autoware.BuildWithMap(cfg, scen, m)
}

// collect assembles the Result from two completed runs.
func collect(spec Spec, det autoware.Detector, duration time.Duration, baseline, faulted *autoware.Stack, inj *faults.Injector) *Result {
	r := &Result{
		Spec:      spec,
		Detector:  det,
		Duration:  duration,
		Events:    inj.Events(),
		Degraded:  faulted.Recorder.DegradedIntervals(),
		Drops:     faulted.Bus.DropReports(),
		Outages:   faulted.Recorder.Outages(),
		Losses:    faulted.Recorder.FaultLosses(),
		Topics:    faulted.Bus.TopicStats(),
		Integrity: faulted.Recorder.IntegrityEvents(),
	}

	nodeSet := map[string]bool{}
	for _, n := range baseline.Recorder.NodeNames() {
		nodeSet[n] = true
	}
	for _, n := range faulted.Recorder.NodeNames() {
		nodeSet[n] = true
	}
	nodes := make([]string, 0, len(nodeSet))
	for n := range nodeSet {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	for _, n := range nodes {
		r.Nodes = append(r.Nodes, NodeStat{
			Node:     n,
			Baseline: baseline.Recorder.NodeLatency(n),
			Faulted:  faulted.Recorder.NodeLatency(n),
		})
	}
	for _, p := range baseline.Recorder.PathNames() {
		r.Paths = append(r.Paths, PathStat{
			Path:     p,
			Baseline: baseline.Recorder.PathLatency(p),
			Faulted:  faulted.Recorder.PathLatency(p),
		})
	}
	return r
}
