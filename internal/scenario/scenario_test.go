package scenario

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/autoware"
	"repro/internal/testenv"
)

// runScenario executes a named scenario over the shared test fixtures.
func runScenario(t *testing.T, name string, duration time.Duration) *Result {
	t.Helper()
	spec, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunWithEnv(testenv.Scenario(), testenv.Map(), spec, autoware.DetectorSSD300, duration)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestContentionReproducesF1 is the chaos-suite rendering of the
// paper's Finding 1: injected co-located CPU work must inflate a
// node's p99 latency relative to the fault-free baseline — and the
// whole report must be byte-identical across two runs with the same
// seed and schedule.
func TestContentionReproducesF1(t *testing.T) {
	const duration = 12 * time.Second
	a := runScenario(t, NameContention, duration)

	// F1 shape: tail inflation on the CPU-heavy nodes.
	inflated := 0
	for _, node := range []string{"ndt_matching", "voxel_grid_filter", "ray_ground_filter"} {
		ns, ok := a.NodeStat(node)
		if !ok {
			t.Fatalf("no stats for %s", node)
		}
		if ns.Baseline.Count == 0 || ns.Faulted.Count == 0 {
			t.Fatalf("%s has empty distributions: %+v", node, ns)
		}
		if ns.Faulted.P99 > ns.Baseline.P99 {
			inflated++
		}
		t.Logf("%s: baseline p99=%.2fms faulted p99=%.2fms", node, ns.Baseline.P99, ns.Faulted.P99)
	}
	if inflated == 0 {
		t.Error("contention inflated no node's p99 over its fault-free baseline")
	}
	if ns, _ := a.NodeStat("ndt_matching"); !(ns.Faulted.P99 > ns.Baseline.P99) {
		t.Errorf("ndt_matching p99 not inflated: baseline=%.3f faulted=%.3f",
			ns.Baseline.P99, ns.Faulted.P99)
	}

	// Determinism: an identical second run renders the identical report.
	b := runScenario(t, NameContention, duration)
	var ra, rb bytes.Buffer
	a.WriteReport(&ra)
	b.WriteReport(&rb)
	if !bytes.Equal(ra.Bytes(), rb.Bytes()) {
		t.Error("same seed + schedule produced different chaos reports")
	}
	if !strings.Contains(ra.String(), "contention") {
		t.Error("report does not mention the scenario")
	}
}

// TestCameraStallDegradesAndRecovers pins the graceful-degradation
// loop: a stalled detector triggers the last-good fallback (visible as
// a degraded interval with substitutions in the trace report), and the
// stack returns to normal output within a bounded window after the
// fault clears.
func TestCameraStallDegradesAndRecovers(t *testing.T) {
	const duration = 10 * time.Second
	res := runScenario(t, NameCameraStall, duration)

	if len(res.Degraded) == 0 {
		t.Fatal("stalled detector produced no degraded interval")
	}
	// A 900 ms stall against a 400 ms staleness timeout lets output
	// trickle through at ~1 Hz, so the watchdog may cycle through
	// several degrade/recover intervals across the window; every one
	// must name the watched node and policy, and every one must close.
	spec := res.Spec
	faultStart, faultEnd := spec.Faults[0].Start, spec.Faults[0].End()
	substituted := 0
	for _, d := range res.Degraded {
		if d.Node != autoware.VisionNodeName || d.Policy != "last-good" {
			t.Errorf("degraded interval = %+v", d)
		}
		if d.Start < faultStart {
			t.Errorf("degradation %v began before the fault window %v", d.Start, faultStart)
		}
		if d.End == 0 {
			t.Errorf("interval starting %v never recovered after the fault cleared", d.Start)
		}
		substituted += d.Substituted
		t.Logf("degraded [%v, %v), %d frames substituted", d.Start, d.End, d.Substituted)
	}
	if substituted == 0 {
		t.Error("watchdog recorded no last-good substitutions while degraded")
	}
	// Bounded recovery: the last stalled callback can finish up to one
	// stall (900 ms) past the window, plus one camera frame (~101 ms)
	// and one watchdog period (100 ms) before the check observes fresh
	// output — well under 2 s (< 20 camera frames).
	last := res.Degraded[len(res.Degraded)-1]
	if last.End > faultEnd+2*time.Second {
		t.Errorf("final recovery at %v, more than 2s after the fault cleared at %v", last.End, faultEnd)
	}

	// Downstream stayed fed: fusion kept producing during the run.
	if ns, ok := res.NodeStat("range_vision_fusion"); !ok || ns.Faulted.Count == 0 {
		t.Error("fusion produced nothing on the faulted run despite last-good substitution")
	}
}

func TestQueueBurstForcesDrops(t *testing.T) {
	res := runScenario(t, NameQueueBurst, 10*time.Second)
	var burstDrops uint64
	for _, d := range res.Drops {
		if d.Topic == "/points_raw" {
			burstDrops += d.Dropped
		}
	}
	if burstDrops == 0 {
		t.Errorf("queue burst forced no /points_raw evictions: %+v", res.Drops)
	}
}

// TestCrashRecoverBoundedRecovery pins the supervision loop: a crashed
// tracker is detected from its first missed dispatch, restarted with
// backoff until the fault clears, and restored from its last state
// checkpoint — all within a bounded window — and the whole report is
// byte-identical across two runs with the same seed.
func TestCrashRecoverBoundedRecovery(t *testing.T) {
	const duration = 12 * time.Second
	a := runScenario(t, NameCrashRecover, duration)

	if len(a.Outages) != 1 {
		t.Fatalf("outages = %+v, want exactly 1", a.Outages)
	}
	o := a.Outages[0]
	fault := a.Spec.Faults[0]
	if o.Node != autoware.TrackerNodeName || o.Cause != "crash" {
		t.Errorf("outage = %+v", o)
	}
	// Detection on the first tracker dispatch inside the window (fused
	// detections arrive at ~10 Hz).
	if o.Detected < fault.Start || o.Detected > fault.Start+500*time.Millisecond {
		t.Errorf("detected at %v, want within 500ms of %v", o.Detected, fault.Start)
	}
	// Bounded recovery: the final backoff is at most BackoffMax plus
	// jitter (2.5 s), plus one dispatch — well under 3 s past the fault.
	if o.Recovered <= fault.End() || o.Recovered > fault.End()+3*time.Second {
		t.Errorf("recovered at %v, want within 3s after the fault cleared at %v", o.Recovered, fault.End())
	}
	if o.Restarts < 1 {
		t.Errorf("restarts = %d, want >= 1", o.Restarts)
	}
	// The tracker's input runs ~10 Hz; everything dispatched while down
	// is lost, bounded by the outage span.
	if o.FramesLost <= 0 || o.FramesLost > 60 {
		t.Errorf("frames lost = %d, want a bounded positive count", o.FramesLost)
	}
	if !o.Restored || o.CheckpointAge <= 0 {
		t.Errorf("restored=%t age=%v, want restoration from a prior checkpoint", o.Restored, o.CheckpointAge)
	}
	if !o.Recheckpointed {
		t.Error("recovery did not re-checkpoint the restored state")
	}

	// Satellite: the injector's crash verdicts are recorded as fault
	// losses, distinct from frames the supervisor consumed while down.
	foundCrashLoss := false
	for _, l := range a.Losses {
		if l.Kind == "crash" && l.Target == autoware.TrackerNodeName && l.Count > 0 {
			foundCrashLoss = true
			if l.First < fault.Start || l.Last >= fault.End() {
				t.Errorf("loss window [%v, %v] outside the fault window", l.First, l.Last)
			}
		}
	}
	if !foundCrashLoss {
		t.Errorf("no crash loss recorded: %+v", a.Losses)
	}

	// The tracker kept producing after recovery.
	if ns, ok := a.NodeStat(autoware.TrackerNodeName); !ok || ns.Faulted.Count == 0 {
		t.Error("tracker has no faulted samples despite recovery")
	}

	// Determinism: an identical second run renders the identical report.
	b := runScenario(t, NameCrashRecover, duration)
	var ra, rb bytes.Buffer
	a.WriteReport(&ra)
	b.WriteReport(&rb)
	if !bytes.Equal(ra.Bytes(), rb.Bytes()) {
		t.Error("same seed + schedule produced different crash-recover reports")
	}
	if !strings.Contains(ra.String(), "supervised outages") {
		t.Error("report has no supervised-outages section")
	}
}

// TestOverloadShedBoundsTail pins deadline-aware load shedding: under
// the same queue-burst flood (same seed, same fault), the shedding run
// must not worsen the worst path's p99 end-to-end latency, and the
// shed counts must be reported.
func TestOverloadShedBoundsTail(t *testing.T) {
	const duration = 10 * time.Second
	shed := runScenario(t, NameOverloadShed, duration)
	unshed := runScenario(t, NameQueueBurst, duration)

	var totalShed uint64
	for _, ts := range shed.Topics {
		totalShed += ts.Shed
	}
	if totalShed == 0 {
		t.Fatalf("overload-shed shed no frames: %+v", shed.Topics)
	}
	for _, ts := range unshed.Topics {
		if ts.Shed != 0 {
			t.Errorf("queue-burst shed frames without a budget: %+v", ts)
		}
	}

	worstP99 := func(r *Result) (string, float64) {
		name, worst := "", 0.0
		for _, ps := range r.Paths {
			if ps.Faulted.P99 > worst {
				name, worst = ps.Path, ps.Faulted.P99
			}
		}
		return name, worst
	}
	shedPath, shedP99 := worstP99(shed)
	unshedPath, unshedP99 := worstP99(unshed)
	t.Logf("worst faulted path p99: shed %s=%.2fms vs unshed %s=%.2fms (%d frames shed)",
		shedPath, shedP99, unshedPath, unshedP99, totalShed)
	if shedP99 > unshedP99 {
		t.Errorf("shedding worsened the worst path p99: %.2fms > %.2fms", shedP99, unshedP99)
	}

	// The report surfaces the shed counts.
	var buf bytes.Buffer
	shed.WriteReport(&buf)
	if !strings.Contains(buf.String(), "deadline-shed frames") || strings.Contains(buf.String(), "deadline-shed frames (faulted run):\n  (none)") {
		t.Error("report has no deadline-shed section with counts")
	}
}

// TestCameraStallFaultLifecycle pins the watchdog × injector
// interaction across the whole fault lifecycle: degradation starts
// inside the fault window, every interval closes, substitution stops
// once the fault clears, and the detector's real output resumes.
func TestCameraStallFaultLifecycle(t *testing.T) {
	const duration = 12 * time.Second
	res := runScenario(t, NameCameraStall, duration)
	fault := res.Spec.Faults[0]

	if len(res.Degraded) == 0 {
		t.Fatal("no degraded intervals recorded")
	}
	for _, d := range res.Degraded {
		if d.Start < fault.Start {
			t.Errorf("interval opened at %v, before the fault at %v", d.Start, fault.Start)
		}
		if d.Start > fault.End()+2*time.Second {
			t.Errorf("interval opened at %v, after the fault cleared at %v", d.Start, fault.End())
		}
		if d.End == 0 {
			t.Errorf("interval opened at %v never closed", d.Start)
		}
		// Substitution happens only while degraded: intervals past the
		// fault window (catching the last stalled callbacks) are brief.
		if d.Start > fault.End() && d.End-d.Start > 2*time.Second {
			t.Errorf("post-fault interval [%v, %v) too long", d.Start, d.End)
		}
	}
	// Substitutions happened during the fault, and stopped afterwards:
	// the final interval closes within the bounded recovery window.
	total := 0
	for _, d := range res.Degraded {
		total += d.Substituted
	}
	if total == 0 {
		t.Error("no last-good substitutions recorded")
	}
	last := res.Degraded[len(res.Degraded)-1]
	if last.End > fault.End()+2*time.Second {
		t.Errorf("substitution continued past %v (fault cleared %v)", last.End, fault.End())
	}

	// Real detector output resumed after recovery: the faulted run kept
	// publishing fresh vision detections well past the fault window.
	for _, ts := range res.Topics {
		if ts.Topic == visionObjectsTopic {
			if ts.Last < fault.End()+time.Second {
				t.Errorf("vision output last published %v, fault cleared %v", ts.Last, fault.End())
			}
			return
		}
	}
	t.Errorf("no topic stats for %s", visionObjectsTopic)
}

func TestByNameRejectsUnknown(t *testing.T) {
	if _, err := ByName("no-such-chaos"); err == nil {
		t.Error("unknown scenario should error")
	}
	for _, n := range Names() {
		if _, err := ByName(n); err != nil {
			t.Errorf("built-in %q not resolvable: %v", n, err)
		}
	}
}

func TestRunRejectsShortDuration(t *testing.T) {
	spec, err := ByName(NameContention)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunWithEnv(testenv.Scenario(), testenv.Map(), spec, autoware.DetectorSSD300, time.Second); err == nil {
		t.Error("duration shorter than the fault horizon should error")
	}
}
