package scenario

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/autoware"
	"repro/internal/testenv"
)

// runScenario executes a named scenario over the shared test fixtures.
func runScenario(t *testing.T, name string, duration time.Duration) *Result {
	t.Helper()
	spec, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunWithEnv(testenv.Scenario(), testenv.Map(), spec, autoware.DetectorSSD300, duration)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestContentionReproducesF1 is the chaos-suite rendering of the
// paper's Finding 1: injected co-located CPU work must inflate a
// node's p99 latency relative to the fault-free baseline — and the
// whole report must be byte-identical across two runs with the same
// seed and schedule.
func TestContentionReproducesF1(t *testing.T) {
	const duration = 12 * time.Second
	a := runScenario(t, NameContention, duration)

	// F1 shape: tail inflation on the CPU-heavy nodes.
	inflated := 0
	for _, node := range []string{"ndt_matching", "voxel_grid_filter", "ray_ground_filter"} {
		ns, ok := a.NodeStat(node)
		if !ok {
			t.Fatalf("no stats for %s", node)
		}
		if ns.Baseline.Count == 0 || ns.Faulted.Count == 0 {
			t.Fatalf("%s has empty distributions: %+v", node, ns)
		}
		if ns.Faulted.P99 > ns.Baseline.P99 {
			inflated++
		}
		t.Logf("%s: baseline p99=%.2fms faulted p99=%.2fms", node, ns.Baseline.P99, ns.Faulted.P99)
	}
	if inflated == 0 {
		t.Error("contention inflated no node's p99 over its fault-free baseline")
	}
	if ns, _ := a.NodeStat("ndt_matching"); !(ns.Faulted.P99 > ns.Baseline.P99) {
		t.Errorf("ndt_matching p99 not inflated: baseline=%.3f faulted=%.3f",
			ns.Baseline.P99, ns.Faulted.P99)
	}

	// Determinism: an identical second run renders the identical report.
	b := runScenario(t, NameContention, duration)
	var ra, rb bytes.Buffer
	a.WriteReport(&ra)
	b.WriteReport(&rb)
	if !bytes.Equal(ra.Bytes(), rb.Bytes()) {
		t.Error("same seed + schedule produced different chaos reports")
	}
	if !strings.Contains(ra.String(), "contention") {
		t.Error("report does not mention the scenario")
	}
}

// TestCameraStallDegradesAndRecovers pins the graceful-degradation
// loop: a stalled detector triggers the last-good fallback (visible as
// a degraded interval with substitutions in the trace report), and the
// stack returns to normal output within a bounded window after the
// fault clears.
func TestCameraStallDegradesAndRecovers(t *testing.T) {
	const duration = 10 * time.Second
	res := runScenario(t, NameCameraStall, duration)

	if len(res.Degraded) == 0 {
		t.Fatal("stalled detector produced no degraded interval")
	}
	// A 900 ms stall against a 400 ms staleness timeout lets output
	// trickle through at ~1 Hz, so the watchdog may cycle through
	// several degrade/recover intervals across the window; every one
	// must name the watched node and policy, and every one must close.
	spec := res.Spec
	faultStart, faultEnd := spec.Faults[0].Start, spec.Faults[0].End()
	substituted := 0
	for _, d := range res.Degraded {
		if d.Node != autoware.VisionNodeName || d.Policy != "last-good" {
			t.Errorf("degraded interval = %+v", d)
		}
		if d.Start < faultStart {
			t.Errorf("degradation %v began before the fault window %v", d.Start, faultStart)
		}
		if d.End == 0 {
			t.Errorf("interval starting %v never recovered after the fault cleared", d.Start)
		}
		substituted += d.Substituted
		t.Logf("degraded [%v, %v), %d frames substituted", d.Start, d.End, d.Substituted)
	}
	if substituted == 0 {
		t.Error("watchdog recorded no last-good substitutions while degraded")
	}
	// Bounded recovery: the last stalled callback can finish up to one
	// stall (900 ms) past the window, plus one camera frame (~101 ms)
	// and one watchdog period (100 ms) before the check observes fresh
	// output — well under 2 s (< 20 camera frames).
	last := res.Degraded[len(res.Degraded)-1]
	if last.End > faultEnd+2*time.Second {
		t.Errorf("final recovery at %v, more than 2s after the fault cleared at %v", last.End, faultEnd)
	}

	// Downstream stayed fed: fusion kept producing during the run.
	if ns, ok := res.NodeStat("range_vision_fusion"); !ok || ns.Faulted.Count == 0 {
		t.Error("fusion produced nothing on the faulted run despite last-good substitution")
	}
}

func TestQueueBurstForcesDrops(t *testing.T) {
	res := runScenario(t, NameQueueBurst, 10*time.Second)
	var burstDrops uint64
	for _, d := range res.Drops {
		if d.Topic == "/points_raw" {
			burstDrops += d.Dropped
		}
	}
	if burstDrops == 0 {
		t.Errorf("queue burst forced no /points_raw evictions: %+v", res.Drops)
	}
}

func TestByNameRejectsUnknown(t *testing.T) {
	if _, err := ByName("no-such-chaos"); err == nil {
		t.Error("unknown scenario should error")
	}
	for _, n := range Names() {
		if _, err := ByName(n); err != nil {
			t.Errorf("built-in %q not resolvable: %v", n, err)
		}
	}
}

func TestRunRejectsShortDuration(t *testing.T) {
	spec, err := ByName(NameContention)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunWithEnv(testenv.Scenario(), testenv.Map(), spec, autoware.DetectorSSD300, time.Second); err == nil {
		t.Error("duration shorter than the fault horizon should error")
	}
}
