package scenario

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/autoware"
	"repro/internal/faults"
	"repro/internal/guard"
	"repro/internal/testenv"
	"repro/internal/trace"
)

// runScenario executes a named scenario over the shared test fixtures.
func runScenario(t *testing.T, name string, duration time.Duration) *Result {
	t.Helper()
	spec, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunWithEnv(testenv.Scenario(), testenv.Map(), spec, autoware.DetectorSSD300, duration)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestContentionReproducesF1 is the chaos-suite rendering of the
// paper's Finding 1: injected co-located CPU work must inflate a
// node's p99 latency relative to the fault-free baseline — and the
// whole report must be byte-identical across two runs with the same
// seed and schedule.
func TestContentionReproducesF1(t *testing.T) {
	const duration = 12 * time.Second
	a := runScenario(t, NameContention, duration)

	// F1 shape: tail inflation on the CPU-heavy nodes.
	inflated := 0
	for _, node := range []string{"ndt_matching", "voxel_grid_filter", "ray_ground_filter"} {
		ns, ok := a.NodeStat(node)
		if !ok {
			t.Fatalf("no stats for %s", node)
		}
		if ns.Baseline.Count == 0 || ns.Faulted.Count == 0 {
			t.Fatalf("%s has empty distributions: %+v", node, ns)
		}
		if ns.Faulted.P99 > ns.Baseline.P99 {
			inflated++
		}
		t.Logf("%s: baseline p99=%.2fms faulted p99=%.2fms", node, ns.Baseline.P99, ns.Faulted.P99)
	}
	if inflated == 0 {
		t.Error("contention inflated no node's p99 over its fault-free baseline")
	}
	if ns, _ := a.NodeStat("ndt_matching"); !(ns.Faulted.P99 > ns.Baseline.P99) {
		t.Errorf("ndt_matching p99 not inflated: baseline=%.3f faulted=%.3f",
			ns.Baseline.P99, ns.Faulted.P99)
	}

	// Determinism: an identical second run renders the identical report.
	b := runScenario(t, NameContention, duration)
	var ra, rb bytes.Buffer
	a.WriteReport(&ra)
	b.WriteReport(&rb)
	if !bytes.Equal(ra.Bytes(), rb.Bytes()) {
		t.Error("same seed + schedule produced different chaos reports")
	}
	if !strings.Contains(ra.String(), "contention") {
		t.Error("report does not mention the scenario")
	}
}

// TestCameraStallDegradesAndRecovers pins the graceful-degradation
// loop: a stalled detector triggers the last-good fallback (visible as
// a degraded interval with substitutions in the trace report), and the
// stack returns to normal output within a bounded window after the
// fault clears.
func TestCameraStallDegradesAndRecovers(t *testing.T) {
	const duration = 10 * time.Second
	res := runScenario(t, NameCameraStall, duration)

	if len(res.Degraded) == 0 {
		t.Fatal("stalled detector produced no degraded interval")
	}
	// A 900 ms stall against a 400 ms staleness timeout lets output
	// trickle through at ~1 Hz, so the watchdog may cycle through
	// several degrade/recover intervals across the window; every one
	// must name the watched node and policy, and every one must close.
	spec := res.Spec
	faultStart, faultEnd := spec.Faults[0].Start, spec.Faults[0].End()
	substituted := 0
	for _, d := range res.Degraded {
		if d.Node != autoware.VisionNodeName || d.Policy != "last-good" {
			t.Errorf("degraded interval = %+v", d)
		}
		if d.Start < faultStart {
			t.Errorf("degradation %v began before the fault window %v", d.Start, faultStart)
		}
		if d.End == 0 {
			t.Errorf("interval starting %v never recovered after the fault cleared", d.Start)
		}
		substituted += d.Substituted
		t.Logf("degraded [%v, %v), %d frames substituted", d.Start, d.End, d.Substituted)
	}
	if substituted == 0 {
		t.Error("watchdog recorded no last-good substitutions while degraded")
	}
	// Bounded recovery: the last stalled callback can finish up to one
	// stall (900 ms) past the window, plus one camera frame (~101 ms)
	// and one watchdog period (100 ms) before the check observes fresh
	// output — well under 2 s (< 20 camera frames).
	last := res.Degraded[len(res.Degraded)-1]
	if last.End > faultEnd+2*time.Second {
		t.Errorf("final recovery at %v, more than 2s after the fault cleared at %v", last.End, faultEnd)
	}

	// Downstream stayed fed: fusion kept producing during the run.
	if ns, ok := res.NodeStat("range_vision_fusion"); !ok || ns.Faulted.Count == 0 {
		t.Error("fusion produced nothing on the faulted run despite last-good substitution")
	}
}

func TestQueueBurstForcesDrops(t *testing.T) {
	res := runScenario(t, NameQueueBurst, 10*time.Second)
	var burstDrops uint64
	for _, d := range res.Drops {
		if d.Topic == "/points_raw" {
			burstDrops += d.Dropped
		}
	}
	if burstDrops == 0 {
		t.Errorf("queue burst forced no /points_raw evictions: %+v", res.Drops)
	}
}

// TestCrashRecoverBoundedRecovery pins the supervision loop: a crashed
// tracker is detected from its first missed dispatch, restarted with
// backoff until the fault clears, and restored from its last state
// checkpoint — all within a bounded window — and the whole report is
// byte-identical across two runs with the same seed.
func TestCrashRecoverBoundedRecovery(t *testing.T) {
	const duration = 12 * time.Second
	a := runScenario(t, NameCrashRecover, duration)

	if len(a.Outages) != 1 {
		t.Fatalf("outages = %+v, want exactly 1", a.Outages)
	}
	o := a.Outages[0]
	fault := a.Spec.Faults[0]
	if o.Node != autoware.TrackerNodeName || o.Cause != "crash" {
		t.Errorf("outage = %+v", o)
	}
	// Detection on the first tracker dispatch inside the window (fused
	// detections arrive at ~10 Hz).
	if o.Detected < fault.Start || o.Detected > fault.Start+500*time.Millisecond {
		t.Errorf("detected at %v, want within 500ms of %v", o.Detected, fault.Start)
	}
	// Bounded recovery: the final backoff is at most BackoffMax plus
	// jitter (2.5 s), plus one dispatch — well under 3 s past the fault.
	if o.Recovered <= fault.End() || o.Recovered > fault.End()+3*time.Second {
		t.Errorf("recovered at %v, want within 3s after the fault cleared at %v", o.Recovered, fault.End())
	}
	if o.Restarts < 1 {
		t.Errorf("restarts = %d, want >= 1", o.Restarts)
	}
	// The tracker's input runs ~10 Hz; everything dispatched while down
	// is lost, bounded by the outage span.
	if o.FramesLost <= 0 || o.FramesLost > 60 {
		t.Errorf("frames lost = %d, want a bounded positive count", o.FramesLost)
	}
	if !o.Restored || o.CheckpointAge <= 0 {
		t.Errorf("restored=%t age=%v, want restoration from a prior checkpoint", o.Restored, o.CheckpointAge)
	}
	if !o.Recheckpointed {
		t.Error("recovery did not re-checkpoint the restored state")
	}

	// Satellite: the injector's crash verdicts are recorded as fault
	// losses, distinct from frames the supervisor consumed while down.
	foundCrashLoss := false
	for _, l := range a.Losses {
		if l.Kind == "crash" && l.Target == autoware.TrackerNodeName && l.Count > 0 {
			foundCrashLoss = true
			if l.First < fault.Start || l.Last >= fault.End() {
				t.Errorf("loss window [%v, %v] outside the fault window", l.First, l.Last)
			}
		}
	}
	if !foundCrashLoss {
		t.Errorf("no crash loss recorded: %+v", a.Losses)
	}

	// The tracker kept producing after recovery.
	if ns, ok := a.NodeStat(autoware.TrackerNodeName); !ok || ns.Faulted.Count == 0 {
		t.Error("tracker has no faulted samples despite recovery")
	}

	// Determinism: an identical second run renders the identical report.
	b := runScenario(t, NameCrashRecover, duration)
	var ra, rb bytes.Buffer
	a.WriteReport(&ra)
	b.WriteReport(&rb)
	if !bytes.Equal(ra.Bytes(), rb.Bytes()) {
		t.Error("same seed + schedule produced different crash-recover reports")
	}
	if !strings.Contains(ra.String(), "supervised outages") {
		t.Error("report has no supervised-outages section")
	}
}

// TestOverloadShedBoundsTail pins deadline-aware load shedding: under
// the same queue-burst flood (same seed, same fault), the shedding run
// must not worsen the worst path's p99 end-to-end latency, and the
// shed counts must be reported.
func TestOverloadShedBoundsTail(t *testing.T) {
	const duration = 10 * time.Second
	shed := runScenario(t, NameOverloadShed, duration)
	unshed := runScenario(t, NameQueueBurst, duration)

	var totalShed uint64
	for _, ts := range shed.Topics {
		totalShed += ts.Shed
	}
	if totalShed == 0 {
		t.Fatalf("overload-shed shed no frames: %+v", shed.Topics)
	}
	for _, ts := range unshed.Topics {
		if ts.Shed != 0 {
			t.Errorf("queue-burst shed frames without a budget: %+v", ts)
		}
	}

	worstP99 := func(r *Result) (string, float64) {
		name, worst := "", 0.0
		for _, ps := range r.Paths {
			if ps.Faulted.P99 > worst {
				name, worst = ps.Path, ps.Faulted.P99
			}
		}
		return name, worst
	}
	shedPath, shedP99 := worstP99(shed)
	unshedPath, unshedP99 := worstP99(unshed)
	t.Logf("worst faulted path p99: shed %s=%.2fms vs unshed %s=%.2fms (%d frames shed)",
		shedPath, shedP99, unshedPath, unshedP99, totalShed)
	if shedP99 > unshedP99 {
		t.Errorf("shedding worsened the worst path p99: %.2fms > %.2fms", shedP99, unshedP99)
	}

	// The report surfaces the shed counts.
	var buf bytes.Buffer
	shed.WriteReport(&buf)
	if !strings.Contains(buf.String(), "deadline-shed frames") || strings.Contains(buf.String(), "deadline-shed frames (faulted run):\n  (none)") {
		t.Error("report has no deadline-shed section with counts")
	}
}

// TestCameraStallFaultLifecycle pins the watchdog × injector
// interaction across the whole fault lifecycle: degradation starts
// inside the fault window, every interval closes, substitution stops
// once the fault clears, and the detector's real output resumes.
func TestCameraStallFaultLifecycle(t *testing.T) {
	const duration = 12 * time.Second
	res := runScenario(t, NameCameraStall, duration)
	fault := res.Spec.Faults[0]

	if len(res.Degraded) == 0 {
		t.Fatal("no degraded intervals recorded")
	}
	for _, d := range res.Degraded {
		if d.Start < fault.Start {
			t.Errorf("interval opened at %v, before the fault at %v", d.Start, fault.Start)
		}
		if d.Start > fault.End()+2*time.Second {
			t.Errorf("interval opened at %v, after the fault cleared at %v", d.Start, fault.End())
		}
		if d.End == 0 {
			t.Errorf("interval opened at %v never closed", d.Start)
		}
		// Substitution happens only while degraded: intervals past the
		// fault window (catching the last stalled callbacks) are brief.
		if d.Start > fault.End() && d.End-d.Start > 2*time.Second {
			t.Errorf("post-fault interval [%v, %v) too long", d.Start, d.End)
		}
	}
	// Substitutions happened during the fault, and stopped afterwards:
	// the final interval closes within the bounded recovery window.
	total := 0
	for _, d := range res.Degraded {
		total += d.Substituted
	}
	if total == 0 {
		t.Error("no last-good substitutions recorded")
	}
	last := res.Degraded[len(res.Degraded)-1]
	if last.End > fault.End()+2*time.Second {
		t.Errorf("substitution continued past %v (fault cleared %v)", last.End, fault.End())
	}

	// Real detector output resumed after recovery: the faulted run kept
	// publishing fresh vision detections well past the fault window.
	for _, ts := range res.Topics {
		if ts.Topic == visionObjectsTopic {
			if ts.Last < fault.End()+time.Second {
				t.Errorf("vision output last published %v, fault cleared %v", ts.Last, fault.End())
			}
			return
		}
	}
	t.Errorf("no topic stats for %s", visionObjectsTopic)
}

func TestByNameRejectsUnknown(t *testing.T) {
	if _, err := ByName("no-such-chaos"); err == nil {
		t.Error("unknown scenario should error")
	}
	for _, n := range Names() {
		if _, err := ByName(n); err != nil {
			t.Errorf("built-in %q not resolvable: %v", n, err)
		}
	}
}

func TestRunRejectsShortDuration(t *testing.T) {
	spec, err := ByName(NameContention)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunWithEnv(testenv.Scenario(), testenv.Map(), spec, autoware.DetectorSSD300, time.Second); err == nil {
		t.Error("duration shorter than the fault horizon should error")
	}
}

// integrityFor returns the aggregated quarantine record for one
// (topic, cause) pair, zero-valued when absent.
func integrityFor(res *Result, topic, cause string) trace.IntegrityEvent {
	for _, ev := range res.Integrity {
		if ev.Topic == topic && ev.Cause == cause {
			return ev
		}
	}
	return trace.IntegrityEvent{}
}

// eventCount sums the injector's applied-perturbation counters for one
// (kind, target) pair.
func eventCount(res *Result, kind faults.Kind, target string) int {
	n := 0
	for _, ev := range res.Events {
		if ev.Kind == kind && ev.Target == target {
			n += ev.Count
		}
	}
	return n
}

// TestCorruptLidarQuarantined pins the tentpole end to end: bit-flipped
// LiDAR frames cross the bus, the guard quarantines every one at
// ingress before it reaches a subscriber queue, the rejections surface
// in the trace and topic stats, no node ever sees a NaN — and the whole
// report is byte-identical across two runs with the same seed.
func TestCorruptLidarQuarantined(t *testing.T) {
	const duration = 12 * time.Second
	a := runScenario(t, NameCorruptLidar, duration)
	fault := a.Spec.Faults[0]

	corrupted := eventCount(a, faults.KindCorrupt, "/points_raw")
	if corrupted == 0 {
		t.Fatalf("injector corrupted nothing: %+v", a.Events)
	}
	// Every corrupted frame — no more, no fewer — was quarantined as
	// malformed at the ingress point, inside the fault window.
	ev := integrityFor(a, "/points_raw", guard.CauseMalformed)
	if ev.Count != corrupted {
		t.Errorf("quarantined %d frames, injector corrupted %d: %+v", ev.Count, corrupted, a.Integrity)
	}
	if ev.Point != guard.PointIngress {
		t.Errorf("detection point = %q, want %q", ev.Point, guard.PointIngress)
	}
	if ev.First < fault.Start || ev.Last > fault.End()+time.Second {
		t.Errorf("quarantine window [%v, %v] outside the fault window [%v, %v]",
			ev.First, ev.Last, fault.Start, fault.End())
	}
	// The bus accounting agrees: quarantined frames never became
	// deliveries.
	for _, ts := range a.Topics {
		if ts.Topic == "/points_raw" && ts.Quarantined != uint64(corrupted) {
			t.Errorf("topic stats quarantined = %d, want %d", ts.Quarantined, corrupted)
		}
	}
	// Downstream perception kept running on the surviving clean frames.
	for _, node := range []string{"voxel_grid_filter", "ray_ground_filter", "ndt_matching"} {
		if ns, ok := a.NodeStat(node); !ok || ns.Faulted.Count == 0 {
			t.Errorf("%s produced nothing under corruption", node)
		}
	}

	// Determinism: an identical second run renders the identical report.
	b := runScenario(t, NameCorruptLidar, duration)
	var ra, rb bytes.Buffer
	a.WriteReport(&ra)
	b.WriteReport(&rb)
	if !bytes.Equal(ra.Bytes(), rb.Bytes()) {
		t.Error("same seed + schedule produced different corrupt-lidar reports")
	}
	if !strings.Contains(ra.String(), "integrity quarantine") ||
		!strings.Contains(ra.String(), guard.CauseMalformed) {
		t.Error("report has no integrity quarantine section")
	}
}

// TestClockSkewSanitized pins time sanitization: LiDAR stamps rewound
// 400 ms and camera stamps run 400 ms ahead are both rejected against
// the guard's per-topic clock model, with cause attribution matching
// the direction of the skew.
func TestClockSkewSanitized(t *testing.T) {
	const duration = 12 * time.Second
	a := runScenario(t, NameClockSkew, duration)

	lidarSkews := eventCount(a, faults.KindSkew, "/points_raw")
	camSkews := eventCount(a, faults.KindSkew, "/image_raw")
	if lidarSkews == 0 || camSkews == 0 {
		t.Fatalf("injector skewed nothing: %+v", a.Events)
	}
	// A stamp rewound 400 ms is either a rewind past the 150 ms
	// holdback or a literal collision with a remembered stamp. Nearly
	// every skewed LiDAR frame must be caught — the only legitimate
	// escape is a run of consecutive skews long enough that the topic's
	// high-water mark goes stale and a rewound stamp lands inside the
	// holdback, where the guard deliberately admits it as a tolerated
	// straggler (the reorder buffer doing its job).
	lidarQ := integrityFor(a, "/points_raw", guard.CauseStampRewind).Count +
		integrityFor(a, "/points_raw", guard.CauseDuplicate).Count
	if lidarQ > lidarSkews || lidarQ < lidarSkews-3 {
		t.Errorf("lidar: quarantined %d of %d skewed frames: %+v", lidarQ, lidarSkews, a.Integrity)
	}
	// A stamp 400 ms in the future can only be a future-stamp.
	camQ := integrityFor(a, "/image_raw", guard.CauseFutureStamp)
	if camQ.Count != camSkews {
		t.Errorf("camera: future-stamp quarantined %d, skewed %d: %+v", camQ.Count, camSkews, a.Integrity)
	}

	// Determinism.
	b := runScenario(t, NameClockSkew, duration)
	var ra, rb bytes.Buffer
	a.WriteReport(&ra)
	b.WriteReport(&rb)
	if !bytes.Equal(ra.Bytes(), rb.Bytes()) {
		t.Error("same seed + schedule produced different clock-skew reports")
	}
}

// TestDupStormQuarantined pins duplicate suppression: a driver
// delivering every LiDAR frame three times gets exactly the two extra
// copies of each frame quarantined — queues see each stamp once.
func TestDupStormQuarantined(t *testing.T) {
	const duration = 10 * time.Second
	a := runScenario(t, NameDupStorm, duration)

	copies := eventCount(a, faults.KindDup, "/points_raw")
	if copies == 0 {
		t.Fatalf("injector duplicated nothing: %+v", a.Events)
	}
	dupQ := integrityFor(a, "/points_raw", guard.CauseDuplicate)
	if dupQ.Count != copies {
		t.Errorf("quarantined %d duplicates, injector made %d copies: %+v",
			dupQ.Count, copies, a.Integrity)
	}
	// Exactly one of each triplet was delivered: the faulted run's
	// /points_raw message count matches the baseline cadence (~10 Hz
	// over the drive), not 3x it.
	for _, ts := range a.Topics {
		if ts.Topic == "/points_raw" {
			if perSec := float64(ts.Messages) / duration.Seconds(); perSec > 12 {
				t.Errorf("duplicates leaked into delivery: %.1f msgs/s on /points_raw", perSec)
			}
		}
	}

	// Determinism.
	b := runScenario(t, NameDupStorm, duration)
	var ra, rb bytes.Buffer
	a.WriteReport(&ra)
	b.WriteReport(&rb)
	if !bytes.Equal(ra.Bytes(), rb.Bytes()) {
		t.Error("same seed + schedule produced different dup-storm reports")
	}
}

// TestGuardCleanRunByteIdentical is the guard's do-no-harm contract:
// over a clean drive the guarded stack produces byte-for-byte the same
// latency samples, topic traffic and drop tables as an unguarded one —
// the guard draws no randomness, schedules no events, quarantines
// nothing.
func TestGuardCleanRunByteIdentical(t *testing.T) {
	const duration = 8 * time.Second
	build := func(guarded bool) *autoware.Stack {
		t.Helper()
		cfg := autoware.DefaultConfig(autoware.DetectorSSD300)
		cfg.Guard = guarded
		s, err := autoware.BuildWithMap(cfg, testenv.Scenario(), testenv.Map())
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	off := build(false)
	off.Run(duration)
	on := build(true)
	on.Run(duration)

	if on.Guard == nil {
		t.Fatal("guarded stack has no guard attached")
	}
	if q := on.Guard.Quarantined(); q != 0 {
		t.Fatalf("guard quarantined %d frames of a clean drive: %+v", q, on.Guard.Counts())
	}
	if on.Guard.Accepted() == 0 {
		t.Fatal("guard inspected nothing — not attached to the ingress path")
	}
	if evs := on.Recorder.IntegrityEvents(); len(evs) != 0 {
		t.Fatalf("clean run recorded integrity events: %+v", evs)
	}

	if !reflect.DeepEqual(off.Recorder.NodeNames(), on.Recorder.NodeNames()) {
		t.Fatalf("node sets differ: %v vs %v", off.Recorder.NodeNames(), on.Recorder.NodeNames())
	}
	for _, n := range off.Recorder.NodeNames() {
		if !reflect.DeepEqual(off.Recorder.NodeSamples(n), on.Recorder.NodeSamples(n)) {
			t.Errorf("node %s latency samples differ between guard-off and guard-on", n)
		}
	}
	for _, p := range off.Recorder.PathNames() {
		if !reflect.DeepEqual(off.Recorder.PathSamples(p), on.Recorder.PathSamples(p)) {
			t.Errorf("path %s latency samples differ between guard-off and guard-on", p)
		}
	}
	if !reflect.DeepEqual(off.Bus.TopicStats(), on.Bus.TopicStats()) {
		t.Error("topic stats differ between guard-off and guard-on")
	}
	if !reflect.DeepEqual(off.Bus.DropReports(), on.Bus.DropReports()) {
		t.Error("drop reports differ between guard-off and guard-on")
	}

	// The guard rides the ingress path and borrows each envelope during
	// inspection; it must never retain one. Both stacks' pool ledgers
	// have to close identically at the cutoff.
	for _, s := range []*autoware.Stack{off, on} {
		ps := s.Bus.PoolStats()
		queued := int64(s.Bus.QueuedMessages())
		held := ps.LiveRefs - queued
		if max := int64(len(s.Executor.NodeNames())) + 2; held < 0 || held > max {
			t.Errorf("pool out of balance: %d live refs, %d queued (held %d, allowed 0..%d)",
				ps.LiveRefs, queued, held, max)
		}
	}
	offPS, onPS := off.Bus.PoolStats(), on.Bus.PoolStats()
	if offPS.Acquired != onPS.Acquired || offPS.Live != onPS.Live || offPS.LiveRefs != onPS.LiveRefs {
		t.Errorf("pool stats differ between guard-off %+v and guard-on %+v", offPS, onPS)
	}
}
