package scenario

import (
	"bytes"
	"testing"

	"repro/internal/autoware"
	"repro/internal/parallel"
	"repro/internal/testenv"
)

// TestTransportWorkerInvariance pins the determinism contract of the
// lock-free transport under the one knob that changes real parallelism:
// the worker budget. The queue-burst scenario (guard and supervisor on,
// faults active) must produce a bit-exact trace — every node and path
// latency sample, plus the rendered report — whether the compute
// kernels run on 1, 2 or 8 workers. Rings and refcounting live on the
// single-threaded simulation spine; worker count may only change *when*
// wall-clock work happens, never any simulated observable.
func TestTransportWorkerInvariance(t *testing.T) {
	spec, err := ByName(NameQueueBurst)
	if err != nil {
		t.Fatal(err)
	}

	type outcome struct {
		report      string
		fingerprint string
	}
	run := func(workers int) outcome {
		prev := parallel.MaxWorkers()
		parallel.SetMaxWorkers(workers)
		defer parallel.SetMaxWorkers(prev)
		baseline, err := buildStack(testenv.Scenario(), testenv.Map(), autoware.DetectorSSD300, false)
		if err != nil {
			t.Fatal(err)
		}
		baseline.Run(transportGoldenDuration)
		res, faulted := runTransportScenario(t, spec, baseline)
		var rep bytes.Buffer
		res.WriteReport(&rep)
		return outcome{report: rep.String(), fingerprint: faulted.Recorder.Fingerprint()}
	}

	ref := run(1)
	for _, workers := range []int{2, 8} {
		got := run(workers)
		if got.fingerprint != ref.fingerprint {
			t.Errorf("latency fingerprint diverged between 1 and %d workers", workers)
		}
		if got.report != ref.report {
			t.Errorf("rendered report diverged between 1 and %d workers", workers)
		}
	}
}
