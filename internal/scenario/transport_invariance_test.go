package scenario

import (
	"bytes"
	"testing"

	"repro/avstack"
	"repro/internal/autoware"
	"repro/internal/parallel"
	"repro/internal/testenv"
	"repro/internal/world"
)

// TestTransportWorkerInvariance pins the determinism contract of the
// lock-free transport under the one knob that changes real parallelism:
// the worker budget. The queue-burst scenario (guard and supervisor on,
// faults active) must produce a bit-exact trace — every node and path
// latency sample, plus the rendered report — whether the compute
// kernels run on 1, 2 or 8 workers. Rings and refcounting live on the
// single-threaded simulation spine; worker count may only change *when*
// wall-clock work happens, never any simulated observable.
func TestTransportWorkerInvariance(t *testing.T) {
	spec, err := ByName(NameQueueBurst)
	if err != nil {
		t.Fatal(err)
	}

	type outcome struct {
		report      string
		fingerprint string
	}
	run := func(workers int) outcome {
		prev := parallel.MaxWorkers()
		parallel.SetMaxWorkers(workers)
		defer parallel.SetMaxWorkers(prev)
		baseline, err := buildStack(testenv.Scenario(), testenv.Map(), autoware.DetectorSSD300, false, 0, world.DefaultScenarioConfig())
		if err != nil {
			t.Fatal(err)
		}
		chains := avstack.AttachChainLog(baseline)
		baseline.Run(transportGoldenDuration)
		res, faulted := runTransportScenario(t, spec, testenv.Scenario(), testenv.Map(), baseline, chains)
		var rep bytes.Buffer
		res.WriteReport(&rep)
		return outcome{report: rep.String(), fingerprint: faulted.Recorder.Fingerprint()}
	}

	ref := run(1)
	for _, workers := range []int{2, 8} {
		got := run(workers)
		if got.fingerprint != ref.fingerprint {
			t.Errorf("latency fingerprint diverged between 1 and %d workers", workers)
		}
		if got.report != ref.report {
			t.Errorf("rendered report diverged between 1 and %d workers", workers)
		}
	}
}

// TestSchedWorkerInvariance extends the determinism contract to the
// deadline scheduler: the contention-tuned scenario — EDF pick,
// criticality tie-breaks, per-node shedding and the admission cap all
// active — must produce a bit-exact latency fingerprint on 1, 2 and 8
// workers. The scheduler reads only virtual-time state, so a scheduled
// run may differ from FIFO but never from itself across worker budgets.
func TestSchedWorkerInvariance(t *testing.T) {
	spec, err := ByName(NameContentionTuned)
	if err != nil {
		t.Fatal(err)
	}

	run := func(workers int) string {
		prev := parallel.MaxWorkers()
		parallel.SetMaxWorkers(workers)
		defer parallel.SetMaxWorkers(prev)
		baseline, err := buildStack(testenv.Scenario(), testenv.Map(), autoware.DetectorSSD300, false, 0, world.DefaultScenarioConfig())
		if err != nil {
			t.Fatal(err)
		}
		chains := avstack.AttachChainLog(baseline)
		baseline.Run(transportGoldenDuration)
		_, faulted := runTransportScenario(t, spec, testenv.Scenario(), testenv.Map(), baseline, chains)
		return faulted.Recorder.Fingerprint()
	}

	ref := run(1)
	for _, workers := range []int{2, 8} {
		if got := run(workers); got != ref {
			t.Errorf("scheduled fingerprint diverged between 1 and %d workers", workers)
		}
	}
}
