package scenario

import (
	"fmt"
	"sort"

	"embed"

	"repro/internal/search"
)

// Generated chaos scenarios are adversarial-search winners pinned as
// regressions: when `characterize -exp search` elects a worst case
// whose latency breaks the end-to-end budget, its candidate text
// (world params line + fault schedule, see search.MarshalCandidate)
// is committed under testdata/gen_*.scenario and becomes a named
// scenario like the builtins — runnable via -faults, hashed by the
// transport golden net, and checked for worker invariance. The stack
// they measure is the hardened one the search measured: guard and
// supervision forced on, mirroring the golden harness.

//go:embed testdata/gen_*.scenario
var generatedFS embed.FS

// Generated returns the pinned search-winner scenarios, sorted by file
// name. A spec that fails to parse is reported as an error naming the
// file — never a panic — so a long-running service (the fleet server
// resolves scenarios per job) degrades a bad pin into a job failure
// instead of a crash. Only the embedded filesystem itself failing to
// read panics: go:embed content is part of the build, and a build that
// cannot read its own sections is unrecoverable.
func Generated() ([]Spec, error) {
	entries, err := generatedFS.ReadDir("testdata")
	if err != nil {
		panic(fmt.Sprintf("scenario: reading embedded generated scenarios: %v", err))
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name() < entries[j].Name() })
	var specs []Spec
	for _, e := range entries {
		data, err := generatedFS.ReadFile("testdata/" + e.Name())
		if err != nil {
			panic(fmt.Sprintf("scenario: reading %s: %v", e.Name(), err))
		}
		c, err := search.ParseCandidate(string(data))
		if err != nil {
			return nil, fmt.Errorf("scenario: parsing %s: %w", e.Name(), err)
		}
		spec := Spec{
			Name: c.Name,
			Description: fmt.Sprintf("search-pinned worst case (%s): generated world + %d-fault schedule "+
				"elected by the adversarial latency search for breaking the end-to-end budget", e.Name(), len(c.Faults)),
			Seed:      c.FaultSeed,
			Faults:    c.Faults,
			World:     &c.World,
			Guard:     true,
			Supervise: true,
		}
		if err := spec.World.Validate(); err != nil {
			return nil, fmt.Errorf("scenario: %s: pinned world invalid: %w", e.Name(), err)
		}
		specs = append(specs, spec)
	}
	return specs, nil
}
