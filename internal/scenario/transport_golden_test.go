package scenario

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"os"
	"testing"
	"time"

	"repro/avstack"
	"repro/internal/autoware"
	"repro/internal/faults"
	"repro/internal/hdmap"
	"repro/internal/testenv"
	"repro/internal/world"
)

// The transport-rewrite regression net: every built-in scenario, run
// with the guard and the supervisor enabled, must render a report whose
// bytes hash to the values recorded from the pre-rewrite (mutex queue,
// per-publish allocation) transport. The transport layer is allowed to
// change its mechanism — rings, pooling, refcounts — but not a single
// observable: stamp order, eviction choice, seq numbering, drop counts,
// quarantine counts, latency samples.
//
// Refresh (only legitimate when simulation semantics intentionally
// change): UPDATE_TRANSPORT_GOLDENS=1 go test -run TestTransportGoldenReports ./internal/scenario/

// transportGoldenDuration covers every builtin horizon (the latest
// fault window closes at 9 s; MinDuration adds 1 s of recovery).
const transportGoldenDuration = 10 * time.Second

const transportGoldenFile = "testdata/transport_goldens.txt"

// runTransportScenario executes one spec's faulted leg with guard and
// supervision forced on, mirroring RunWithEnv's attach order exactly
// (injector, then supervisor, then shedding, then watchdog, then
// scheduler). scen and m are the environment the spec's world resolves
// to (the shared testenv for builtins; a spec-owned build for generated
// scenarios). chains is the lineage log observed on the matching
// baseline run; only sched-enabled specs consult it.
func runTransportScenario(t *testing.T, spec Spec, scen *world.Scenario, m *hdmap.Map, baseline *autoware.Stack, chains *avstack.ChainLog) (*Result, *autoware.Stack) {
	t.Helper()
	spec.Guard = true
	spec.Supervise = true
	if min := spec.MinDuration(); transportGoldenDuration < min {
		t.Fatalf("%s: golden duration %v below scenario horizon %v", spec.Name, transportGoldenDuration, min)
	}
	depth := 0
	if spec.Sched != nil {
		depth = spec.Sched.QueueDepth
	}
	faulted, err := buildStack(scen, m, autoware.DetectorSSD300, true, depth, spec.worldConfig())
	if err != nil {
		t.Fatal(err)
	}
	inj, err := faults.New(spec.Schedule())
	if err != nil {
		t.Fatal(err)
	}
	inj.SetLossRecorder(faulted.Recorder)
	inj.Attach(faulted.Executor, faulted.Bus)
	if _, err := avstack.AttachDefaultSupervision(faulted, spec.Seed); err != nil {
		t.Fatal(err)
	}
	if spec.ShedBudget > 0 {
		faulted.Executor.ShedBudget = spec.ShedBudget
	}
	if len(spec.Watch) > 0 {
		wd := avstack.NewWatchdog(faulted, avstack.WatchdogConfig{
			Period:   spec.WatchPeriod,
			Policies: spec.Watch,
		})
		wd.Attach()
	}
	if spec.Sched != nil {
		avstack.AttachScheduler(faulted, avstack.AnalyzeCriticality(chains.Chains()), *spec.Sched)
	}
	faulted.Run(transportGoldenDuration)
	return collect(spec, autoware.DetectorSSD300, transportGoldenDuration, baseline, faulted, inj), faulted
}

// checkPoolBalance asserts the pool's reference ledger closes at the
// simulation cutoff: every live reference is either sitting in a
// subscriber queue, held by a callback that was mid-flight when the
// clock stopped (at most one per node), or pinned by the fusion node's
// latest-vision/latest-pose caches (at most two). Anything beyond that
// bound is a leaked envelope; a negative balance means a queue holds a
// message the pool thinks is dead — a double release.
func checkPoolBalance(t *testing.T, name string, stack *autoware.Stack) {
	t.Helper()
	ps := stack.Bus.PoolStats()
	queued := int64(stack.Bus.QueuedMessages())
	held := ps.LiveRefs - queued
	maxHeld := int64(len(stack.Executor.NodeNames())) + 2
	if held < 0 || held > maxHeld {
		t.Errorf("%s: pool out of balance at cutoff: %d live refs, %d queued (held %d, allowed 0..%d); stats %+v",
			name, ps.LiveRefs, queued, held, maxHeld, ps)
	}
}

func TestTransportGoldenReports(t *testing.T) {
	baseline, err := buildStack(testenv.Scenario(), testenv.Map(), autoware.DetectorSSD300, false, 0, world.DefaultScenarioConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The chain log is a pure observer: with it attached the baseline
	// report — and therefore every pre-scheduler golden hash — is
	// byte-identical to the pre-lineage recording.
	chains := avstack.AttachChainLog(baseline)
	baseline.Run(transportGoldenDuration)

	var got bytes.Buffer
	for _, spec := range builtins() {
		res, faulted := runTransportScenario(t, spec, testenv.Scenario(), testenv.Map(), baseline, chains)
		var rep bytes.Buffer
		res.WriteReport(&rep)
		fmt.Fprintf(&got, "%-14s sha256=%x\n", spec.Name, sha256.Sum256(rep.Bytes()))
		checkPoolBalance(t, spec.Name, faulted)
	}

	// The pinned search winners run over their own generated worlds:
	// each builds its environment and its own fault-free baseline leg,
	// then hashes the same side-by-side report. Their lines append after
	// the builtins, so pinning a new worst case never perturbs the
	// pre-existing golden prefix.
	generated, err := Generated()
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range generated {
		scen, err := world.BuildScenario(*spec.World)
		if err != nil {
			t.Fatalf("%s: building world: %v", spec.Name, err)
		}
		mc := hdmap.DefaultConfig()
		mc.ScanSpacing = 10
		m, err := hdmap.Build(scen, mc)
		if err != nil {
			t.Fatalf("%s: building map: %v", spec.Name, err)
		}
		genBaseline, err := buildStack(scen, m, autoware.DetectorSSD300, false, 0, spec.worldConfig())
		if err != nil {
			t.Fatal(err)
		}
		genBaseline.Run(transportGoldenDuration)
		res, faulted := runTransportScenario(t, spec, scen, m, genBaseline, nil)
		var rep bytes.Buffer
		res.WriteReport(&rep)
		fmt.Fprintf(&got, "%-14s sha256=%x\n", spec.Name, sha256.Sum256(rep.Bytes()))
		checkPoolBalance(t, spec.Name, faulted)
		// A pinned search winner earned its place by breaking the
		// end-to-end budget; if the violation ever heals on its own, the
		// pin is stale and the search should be re-run.
		worst := 0.0
		for _, p := range res.Paths {
			if p.Faulted.Count > 0 && p.Faulted.P99 > worst {
				worst = p.Faulted.P99
			}
		}
		if worst <= e2eBudgetMS {
			t.Errorf("%s: pinned violation healed: worst faulted p99 %.2f ms within the %.0f ms budget",
				spec.Name, worst, e2eBudgetMS)
		}
	}

	if os.Getenv("UPDATE_TRANSPORT_GOLDENS") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(transportGoldenFile, got.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s:\n%s", transportGoldenFile, got.String())
		return
	}

	want, err := os.ReadFile(transportGoldenFile)
	if err != nil {
		t.Fatalf("missing goldens (run with UPDATE_TRANSPORT_GOLDENS=1 to record): %v", err)
	}
	if bytes.Equal(got.Bytes(), want) {
		return
	}
	wantLines := bytes.Split(bytes.TrimRight(want, "\n"), []byte("\n"))
	gotLines := bytes.Split(bytes.TrimRight(got.Bytes(), "\n"), []byte("\n"))
	for i := 0; i < len(wantLines) || i < len(gotLines); i++ {
		var w, g string
		if i < len(wantLines) {
			w = string(wantLines[i])
		}
		if i < len(gotLines) {
			g = string(gotLines[i])
		}
		if w != g {
			t.Errorf("report hash diverged from pre-rewrite transport:\n  want %s\n  got  %s", w, g)
		}
	}
}
