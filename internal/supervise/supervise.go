// Package supervise implements the node-lifecycle supervision layer:
// it detects crashed or silent nodes, restarts them with exponential
// backoff plus seeded jitter, and restores the last state checkpoint on
// restart — the bounded-delay middleware recovery that He & Shi argue
// must live beside the executor, built on the same filter chain the
// fault injector uses.
//
// Detection runs on two channels. Missed dispatch: the supervisor's
// callback filter runs in front of the fault layer, so a crash verdict
// from below is observed the instant a dispatched input is consumed
// unprocessed. Header-stamp liveness: each policy may watch the node's
// output topic and declare the node down when no fresh publication
// arrived within the timeout. While a node is down the supervisor owns
// its inputs — every dispatch is consumed and counted as a lost frame,
// exactly as a dead process's subscriptions would lose them — until a
// restart probe succeeds.
//
// All stochastic decisions (backoff jitter) draw from per-node RNG
// streams split from the config seed, so a deterministic simulation
// stays deterministic with the supervisor attached: the same seed and
// fault schedule always produce the same restart timeline.
//
// Hook point and ordering. The supervisor lives at the executor's
// *dispatch* instant (CallbackFilter, chained in front of the fault
// injector's so crash verdicts from below are visible) plus a bus Tap
// for output liveness. In the decision chain it is third: the injector
// perturbs at publish, the guard adjudicates at ingress — a
// quarantined frame is never dispatched, so quarantine is never
// mistaken for a crash — and the scheduler's pick runs last, choosing
// only among dispatches the supervisor let stand.
//
// Ownership. The callback filter borrows the dispatched message for
// the call; a Drop verdict for a down node leaves the release to the
// executor. Checkpoints are deep copies on both sides of the
// Checkpointer contract — the supervisor retains no live node state
// and no bus envelopes.
package supervise

import (
	"fmt"
	"time"

	"repro/internal/mathx"
	"repro/internal/platform"
	"repro/internal/ros"
	"repro/internal/trace"
)

// Checkpointer is the state snapshot/restore hook a supervised stateful
// node implements. Snapshot must deep-copy: the supervisor holds the
// returned value across later mutations of the node. Restore(nil)
// models a cold restart with no checkpoint — the node resets to its
// initial state.
type Checkpointer interface {
	Snapshot() any
	Restore(snapshot any)
}

// Policy declares supervision for one node.
type Policy struct {
	// Node names the supervised node.
	Node string
	// Topic is the node's output topic watched for header-stamp
	// liveness (required when LivenessTimeout is set).
	Topic string
	// LivenessTimeout declares the node down when no fresh output
	// arrived for this long; zero disables liveness detection (the
	// node is then only supervised through missed dispatches).
	LivenessTimeout time.Duration
	// Checkpoint, when non-nil, is snapshotted periodically and
	// restored on restart, so a crash loses only the state since the
	// last checkpoint instead of silently keeping stale in-memory
	// state across the crash window.
	Checkpoint Checkpointer
}

// Config tunes the supervisor.
type Config struct {
	// Seed drives the backoff jitter through per-node split streams.
	Seed uint64
	// Period is the liveness-check and checkpoint cadence (default 100 ms).
	Period time.Duration
	// CheckpointEvery is the minimum spacing between checkpoints of a
	// healthy node (default 1 s).
	CheckpointEvery time.Duration
	// BackoffBase is the first restart delay (default 200 ms); each
	// failed probe doubles it up to BackoffMax (default 2 s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// BackoffJitter is the uniform extra fraction added to each delay,
	// drawn from the node's seeded stream (default 0.25).
	BackoffJitter float64
	// Policies lists the supervised nodes.
	Policies []Policy
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Period <= 0 {
		c.Period = 100 * time.Millisecond
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = time.Second
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 200 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 2 * time.Second
	}
	if c.BackoffJitter <= 0 {
		c.BackoffJitter = 0.25
	}
	return c
}

// Validate checks the policies.
func (c Config) Validate() error {
	if len(c.Policies) == 0 {
		return fmt.Errorf("supervise: no policies")
	}
	seen := map[string]bool{}
	for _, p := range c.Policies {
		if p.Node == "" {
			return fmt.Errorf("supervise: policy needs a node")
		}
		if seen[p.Node] {
			return fmt.Errorf("supervise: duplicate policy for node %q", p.Node)
		}
		seen[p.Node] = true
		if p.LivenessTimeout > 0 && p.Topic == "" {
			return fmt.Errorf("supervise: liveness policy for %q needs a topic", p.Node)
		}
	}
	return nil
}

// Detection causes reported in trace.Outage.Cause.
const (
	// CauseCrash marks an outage detected from a missed dispatch (the
	// layer below consumed the node's input without running it).
	CauseCrash = "crash"
	// CauseStaleOutput marks an outage detected from header-stamp
	// liveness (no fresh output within the policy timeout).
	CauseStaleOutput = "stale-output"
)

// node lifecycle phases.
const (
	phaseHealthy = iota
	// phaseDown: the supervisor considers the process dead; inputs are
	// consumed as lost frames and a restart attempt is pending.
	phaseDown
	// phaseProbe: a restart was issued; the next dispatched input
	// decides — a completed callback confirms recovery, another missed
	// dispatch fails the probe and doubles the backoff.
	phaseProbe
)

type nodeState struct {
	policy Policy
	rng    *mathx.RNG

	phase   int
	attempt int

	// Checkpoint bookkeeping.
	snapshot    any
	snapshotAt  time.Duration
	restored    bool
	restoredAge time.Duration

	// Liveness bookkeeping (header stamps on the output topic).
	seenOut   bool
	lastFresh time.Duration
	lastSeq   uint64
}

// Supervisor is an attached supervision layer over one stack.
type Supervisor struct {
	cfg    Config
	sim    *platform.Sim
	rec    *trace.Recorder
	states map[string]*nodeState
	order  []string
}

// New prepares a supervisor. Attach wires it into a stack; the fault
// layer (if any) must already be attached so the supervisor's filter
// runs in front of it and observes its crash verdicts.
func New(cfg Config) (*Supervisor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	s := &Supervisor{cfg: cfg, states: make(map[string]*nodeState)}
	// Decorrelate the jitter streams from fault-injector streams built
	// from the same seed.
	root := mathx.NewRNG(cfg.Seed ^ 0x5095_EC70_12BA_CC0F)
	for _, p := range cfg.Policies {
		s.states[p.Node] = &nodeState{policy: p, rng: root.Split()}
		s.order = append(s.order, p.Node)
	}
	return s, nil
}

// Attach wires the supervisor into an executor, bus and trace recorder
// and starts the periodic liveness/checkpoint tick. rec may be nil.
func (s *Supervisor) Attach(ex *platform.Executor, bus *ros.Bus, rec *trace.Recorder) {
	s.sim = ex.Sim
	s.rec = rec

	s.chainCallbackFilter(ex)
	s.chainOnDone(ex)
	bus.Tap(s.observeDeliver, nil)
	s.sim.After(s.cfg.Period, s.tick)
}

// chainCallbackFilter installs the supervisor in front of any existing
// filter chain (typically the fault injector): down nodes lose their
// inputs here, healthy and probing nodes delegate downward and the
// returned verdict is the missed-dispatch detection signal.
func (s *Supervisor) chainCallbackFilter(ex *platform.Executor) {
	prev := ex.CallbackFilter
	ex.CallbackFilter = func(node string, m *ros.Message, now time.Duration) platform.CallbackVerdict {
		st := s.states[node]
		if st != nil && st.phase == phaseDown {
			// The process is down: its subscriptions are dead and this
			// input is lost.
			if s.rec != nil {
				s.rec.OnOutageFrameLost(node)
			}
			return platform.CallbackVerdict{Drop: true}
		}
		var v platform.CallbackVerdict
		if prev != nil {
			v = prev(node, m, now)
		}
		if v.Drop && st != nil {
			switch st.phase {
			case phaseHealthy:
				s.declareDown(st, CauseCrash, now)
			case phaseProbe:
				s.probeFailed(st, now)
			}
			if s.rec != nil {
				s.rec.OnOutageFrameLost(node)
			}
		}
		return v
	}
}

// chainOnDone observes completed callbacks: the first completion after
// a restart confirms recovery.
func (s *Supervisor) chainOnDone(ex *platform.Executor) {
	prev := ex.OnDone
	ex.OnDone = func(d platform.DoneInfo) {
		if prev != nil {
			prev(d)
		}
		if st := s.states[d.Node]; st != nil && st.phase == phaseProbe {
			s.recovered(st)
		}
	}
}

// observeDeliver tracks fresh publications on watched output topics,
// de-duplicating the per-subscription fan-out by sequence number.
//
// Borrow contract: the pooled envelope is valid only for this call;
// the supervisor copies out the scalar stamp and sequence and retains
// neither m nor anything reachable through its header. (A dropped
// callback input is released by the executor, not here — the verdict
// in chainCallbackFilter only decides, it never owns the envelope.)
func (s *Supervisor) observeDeliver(sub *ros.Subscription, m *ros.Message) {
	for _, name := range s.order {
		st := s.states[name]
		if st.policy.Topic != sub.Topic || m.Header.Seq == st.lastSeq {
			continue
		}
		st.lastSeq = m.Header.Seq
		st.seenOut = true
		st.lastFresh = m.Header.Stamp
	}
}

// tick runs one periodic pass: checkpoint healthy nodes and check
// output liveness.
func (s *Supervisor) tick() {
	now := s.sim.Now()
	for _, name := range s.order {
		st := s.states[name]
		if st.phase != phaseHealthy {
			continue
		}
		if cp := st.policy.Checkpoint; cp != nil &&
			(st.snapshot == nil || now-st.snapshotAt >= s.cfg.CheckpointEvery) {
			st.snapshot = cp.Snapshot()
			st.snapshotAt = now
		}
		if st.policy.LivenessTimeout > 0 && st.seenOut &&
			now-st.lastFresh > st.policy.LivenessTimeout {
			s.declareDown(st, CauseStaleOutput, now)
		}
	}
	s.sim.After(s.cfg.Period, s.tick)
}

// declareDown opens an outage and schedules the first restart attempt.
func (s *Supervisor) declareDown(st *nodeState, cause string, now time.Duration) {
	st.phase = phaseDown
	st.attempt = 0
	st.restored = false
	st.restoredAge = 0
	if s.rec != nil {
		s.rec.OnOutageOpen(st.policy.Node, cause, now)
	}
	s.scheduleRestart(st)
}

// probeFailed returns a probing node to down and doubles the backoff.
func (s *Supervisor) probeFailed(st *nodeState, now time.Duration) {
	st.phase = phaseDown
	s.scheduleRestart(st)
}

// scheduleRestart arms the next restart attempt after the backoff
// delay for the current attempt count, plus seeded jitter.
func (s *Supervisor) scheduleRestart(st *nodeState) {
	s.sim.After(s.backoff(st), func() { s.restart(st) })
}

// backoff returns BackoffBase·2^attempt capped at BackoffMax, with a
// uniform extra of up to BackoffJitter of the delay.
func (s *Supervisor) backoff(st *nodeState) time.Duration {
	d := s.cfg.BackoffBase
	for i := 0; i < st.attempt && d < s.cfg.BackoffMax; i++ {
		d *= 2
	}
	if d > s.cfg.BackoffMax {
		d = s.cfg.BackoffMax
	}
	return d + time.Duration(st.rng.Range(0, s.cfg.BackoffJitter*float64(d)))
}

// restart issues one restart attempt: the replacement process boots,
// restores the last checkpoint (losing everything since it), and the
// node enters the probe phase — the next dispatch decides whether the
// restart took.
func (s *Supervisor) restart(st *nodeState) {
	if st.phase != phaseDown {
		return
	}
	st.attempt++
	if s.rec != nil {
		s.rec.OnOutageRestart(st.policy.Node)
	}
	if cp := st.policy.Checkpoint; cp != nil {
		cp.Restore(st.snapshot)
		st.restored = st.snapshot != nil
		st.restoredAge = s.sim.Now() - st.snapshotAt
	}
	st.phase = phaseProbe
}

// recovered closes the outage after a restarted node completed its
// first callback, and immediately re-checkpoints the restored state.
func (s *Supervisor) recovered(st *nodeState) {
	now := s.sim.Now()
	st.phase = phaseHealthy
	st.attempt = 0
	recheckpointed := false
	if cp := st.policy.Checkpoint; cp != nil {
		st.snapshot = cp.Snapshot()
		st.snapshotAt = now
		recheckpointed = true
	}
	if s.rec != nil {
		s.rec.OnOutageClose(st.policy.Node, now, st.restored, st.restoredAge, recheckpointed)
	}
}

// Nodes returns the supervised node names in policy order.
func (s *Supervisor) Nodes() []string {
	out := make([]string, len(s.order))
	copy(out, s.order)
	return out
}

// Down reports whether a supervised node is currently considered down
// (or mid-probe).
func (s *Supervisor) Down(node string) bool {
	st := s.states[node]
	return st != nil && st.phase != phaseHealthy
}
