package supervise

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/platform"
	"repro/internal/ros"
	"repro/internal/trace"
	"repro/internal/work"
)

// statefulNode echoes /in to /out after ~1 ms of work, counting inputs.
// The counter is its checkpointed state; restores log what the counter
// was rolled back to. MuteAfter, when set, stops output publication
// (but not processing) past that time — the stale-output trigger.
type statefulNode struct {
	count     int
	muteAfter time.Duration
	restores  []int
}

type counterSnap struct{ count int }

func (n *statefulNode) Name() string { return "n" }
func (n *statefulNode) Subscribes() []ros.SubSpec {
	return []ros.SubSpec{{Topic: "/in", Depth: 2}}
}
func (n *statefulNode) Process(in *ros.Message, now time.Duration) ros.Result {
	n.count++
	if n.muteAfter > 0 && now >= n.muteAfter {
		return ros.Result{Work: work.Work{IntOps: 1.55e6}}
	}
	return ros.Result{
		Outputs: []ros.Output{{Topic: "/out", Payload: in.Payload}},
		Work:    work.Work{IntOps: 1.55e6},
	}
}

// sinkNode subscribes to /out so the bus actually delivers it (the
// supervisor's liveness tap observes deliveries, not publications).
type sinkNode struct{}

func (sinkNode) Name() string { return "sink" }
func (sinkNode) Subscribes() []ros.SubSpec {
	return []ros.SubSpec{{Topic: "/out", Depth: 2}}
}
func (sinkNode) Process(*ros.Message, time.Duration) ros.Result { return ros.Result{} }

func (n *statefulNode) Snapshot() any { return &counterSnap{count: n.count} }
func (n *statefulNode) Restore(snapshot any) {
	cp, ok := snapshot.(*counterSnap)
	if !ok || cp == nil {
		n.count = 0
		n.restores = append(n.restores, 0)
		return
	}
	n.count = cp.count
	n.restores = append(n.restores, cp.count)
}

// rig is a one-node pipeline with a manual crash window (standing in
// for the fault injector's filter chain) under a supervisor.
type rig struct {
	sim  *platform.Sim
	ex   *platform.Executor
	bus  *ros.Bus
	node *statefulNode
	rec  *trace.Recorder
	sup  *Supervisor
}

// newRig installs the crash window first and the supervisor second, so
// the supervisor's filter observes the crash verdicts — the same
// ordering the scenario harness uses with the real injector.
func newRig(t *testing.T, cfg Config, crashStart, crashEnd time.Duration) *rig {
	t.Helper()
	sim := platform.NewSim()
	cpu := platform.NewCPU(platform.DefaultCPUConfig(), sim)
	gpu := platform.NewGPU(platform.DefaultGPUConfig(), sim)
	bus := ros.NewBus()
	ex := platform.NewExecutor(sim, cpu, gpu, bus, nil)
	node := &statefulNode{}
	ex.AddNode(node, platform.NodeOptions{})
	ex.AddNode(sinkNode{}, platform.NodeOptions{})

	if crashEnd > crashStart {
		ex.CallbackFilter = func(_ string, _ *ros.Message, now time.Duration) platform.CallbackVerdict {
			if now >= crashStart && now < crashEnd {
				return platform.CallbackVerdict{Drop: true}
			}
			return platform.CallbackVerdict{}
		}
	}

	for i := range cfg.Policies {
		if cfg.Policies[i].Checkpoint != nil {
			cfg.Policies[i].Checkpoint = node
		}
	}
	sup, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder(nil)
	sup.Attach(ex, bus, rec)
	return &rig{sim: sim, ex: ex, bus: bus, node: node, rec: rec, sup: sup}
}

func (r *rig) pump(n int, period time.Duration) {
	for i := 0; i < n; i++ {
		i := i
		r.sim.Schedule(time.Duration(i)*period, func() { r.ex.Publish("/in", i) })
	}
}

// fastConfig keeps the recovery loop quick for short test runs.
func fastConfig(seed uint64) Config {
	return Config{
		Seed:            seed,
		Period:          50 * time.Millisecond,
		CheckpointEvery: 200 * time.Millisecond,
		BackoffBase:     100 * time.Millisecond,
		BackoffMax:      400 * time.Millisecond,
		Policies: []Policy{{
			Node:       "n",
			Checkpoint: &statefulNode{}, // replaced with the rig's node
		}},
	}
}

func TestCrashDetectRestartRestore(t *testing.T) {
	const crashStart, crashEnd = time.Second, 1800 * time.Millisecond
	r := newRig(t, fastConfig(7), crashStart, crashEnd)
	r.pump(300, 10*time.Millisecond)
	r.sim.Run(4 * time.Second)

	outs := r.rec.Outages()
	if len(outs) != 1 {
		t.Fatalf("outages = %+v, want exactly 1", outs)
	}
	o := outs[0]
	if o.Node != "n" || o.Cause != CauseCrash {
		t.Errorf("outage = %+v", o)
	}
	// Detection on the first dispatch inside the window (inputs every
	// 10 ms).
	if o.Detected < crashStart || o.Detected > crashStart+50*time.Millisecond {
		t.Errorf("detected at %v, want within 50ms of %v", o.Detected, crashStart)
	}
	// Bounded recovery: the last failed probe before 1.8 s backs off at
	// most BackoffMax*(1+jitter) = 500 ms, so recovery lands within
	// ~600 ms of the window end.
	if o.Recovered <= crashEnd || o.Recovered > crashEnd+600*time.Millisecond {
		t.Errorf("recovered at %v, want shortly after %v", o.Recovered, crashEnd)
	}
	if o.Restarts < 2 {
		t.Errorf("restarts = %d, want >= 2 (probes inside the window must fail)", o.Restarts)
	}
	// ~80 inputs land inside the window, plus up to ~60 more during the
	// final backoff before the post-window probe succeeds.
	if o.FramesLost < 60 || o.FramesLost > 145 {
		t.Errorf("frames lost = %d, want ~80-140", o.FramesLost)
	}
	if !o.Restored || o.CheckpointAge <= 0 {
		t.Errorf("restored=%t age=%v, want a restored checkpoint", o.Restored, o.CheckpointAge)
	}
	if !o.Recheckpointed {
		t.Error("recovery did not re-checkpoint the restored state")
	}

	// State loss semantics: every restore rolled the counter back to the
	// last pre-crash checkpoint (taken at or before 1 s ≈ 100 inputs),
	// and the restored value never exceeds the count at crash time.
	if len(r.node.restores) != o.Restarts {
		t.Errorf("restores = %v, want one per restart (%d)", r.node.restores, o.Restarts)
	}
	for _, v := range r.node.restores {
		if v <= 0 || v > 100 {
			t.Errorf("restored counter to %d, want a pre-crash checkpoint in (0, 100]", v)
		}
	}
	if r.sup.Down("n") {
		t.Error("node still considered down after recovery")
	}

	// The pipeline kept flowing after recovery: total processed = all
	// inputs minus the lost frames.
	if want := 300 - o.FramesLost; r.node.count > want {
		t.Errorf("count = %d, want <= %d after checkpoint rollback", r.node.count, want)
	}
	if r.node.count < 150 {
		t.Errorf("count = %d, node did not resume processing", r.node.count)
	}
}

func TestCrashBeforeFirstCheckpointIsColdRestart(t *testing.T) {
	// The crash window opens at 0: the node is declared down on its
	// first dispatch, before any checkpoint tick ran.
	r := newRig(t, fastConfig(7), 1*time.Millisecond, 300*time.Millisecond)
	r.pump(100, 10*time.Millisecond)
	r.sim.Run(2 * time.Second)

	outs := r.rec.Outages()
	if len(outs) != 1 {
		t.Fatalf("outages = %+v, want exactly 1", outs)
	}
	if outs[0].Restored {
		t.Errorf("outage = %+v, want a cold restart (no checkpoint existed)", outs[0])
	}
	if len(r.node.restores) == 0 || r.node.restores[0] != 0 {
		t.Errorf("restores = %v, want cold reset to 0", r.node.restores)
	}
}

func TestStaleOutputLivenessDetection(t *testing.T) {
	cfg := fastConfig(11)
	cfg.Policies[0].Topic = "/out"
	cfg.Policies[0].LivenessTimeout = 300 * time.Millisecond
	r := newRig(t, cfg, 0, 0) // no crash window
	r.node.muteAfter = time.Second
	r.pump(300, 10*time.Millisecond)
	r.sim.Run(3 * time.Second)

	outs := r.rec.Outages()
	if len(outs) == 0 {
		t.Fatal("mute node triggered no stale-output outage")
	}
	o := outs[0]
	if o.Cause != CauseStaleOutput {
		t.Errorf("cause = %q, want %q", o.Cause, CauseStaleOutput)
	}
	// Staleness accrues from the last output (~1 s): detection within
	// timeout + one check period + slack.
	if o.Detected < 1300*time.Millisecond || o.Detected > 1500*time.Millisecond {
		t.Errorf("detected at %v, want ~1.35s", o.Detected)
	}
	// The restarted node still completes callbacks, so the probe
	// succeeds and the outage closes.
	if o.Recovered == 0 {
		t.Errorf("outage never recovered: %+v", o)
	}
}

func TestSupervisorDeterminism(t *testing.T) {
	run := func() ([]trace.Outage, int, []int) {
		r := newRig(t, fastConfig(42), time.Second, 1800*time.Millisecond)
		r.pump(300, 10*time.Millisecond)
		r.sim.Run(4 * time.Second)
		return r.rec.Outages(), r.node.count, r.node.restores
	}
	o1, c1, s1 := run()
	o2, c2, s2 := run()
	if !reflect.DeepEqual(o1, o2) {
		t.Errorf("outages diverge:\n%+v\n%+v", o1, o2)
	}
	if c1 != c2 || !reflect.DeepEqual(s1, s2) {
		t.Errorf("state diverges: count %d vs %d, restores %v vs %v", c1, c2, s1, s2)
	}

	// A different seed shifts the jittered restart timeline.
	r3 := newRig(t, fastConfig(43), time.Second, 1800*time.Millisecond)
	r3.pump(300, 10*time.Millisecond)
	r3.sim.Run(4 * time.Second)
	o3 := r3.rec.Outages()
	if len(o3) == 1 && len(o1) == 1 && o3[0].Recovered == o1[0].Recovered {
		t.Logf("note: different seed recovered at the identical instant %v (possible but unlikely)", o1[0].Recovered)
	}
}

func TestHealthyRunRecordsNothing(t *testing.T) {
	r := newRig(t, fastConfig(5), 0, 0)
	r.pump(100, 10*time.Millisecond)
	r.sim.Run(2 * time.Second)
	if outs := r.rec.Outages(); len(outs) != 0 {
		t.Errorf("healthy run recorded outages: %+v", outs)
	}
	if r.node.count != 100 {
		t.Errorf("processed %d/100", r.node.count)
	}
	if len(r.node.restores) != 0 {
		t.Errorf("healthy run restored state: %v", r.node.restores)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{},
		{Policies: []Policy{{Node: ""}}},
		{Policies: []Policy{{Node: "a"}, {Node: "a"}}},
		{Policies: []Policy{{Node: "a", LivenessTimeout: time.Second}}}, // liveness needs topic
	}
	for i, c := range bad {
		if _, err := New(c); err == nil {
			t.Errorf("config %d should fail validation", i)
		}
	}
	if _, err := New(Config{Policies: []Policy{{Node: "a"}}}); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestNodesAccessor(t *testing.T) {
	s, err := New(Config{Policies: []Policy{{Node: "a"}, {Node: "b"}}})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Nodes(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Errorf("Nodes() = %v", got)
	}
	if s.Down("a") || s.Down("missing") {
		t.Error("unattached supervisor considers nodes down")
	}
}
