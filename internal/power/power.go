// Package power models platform power draw and implements the
// atop/nvidia-smi-style 1 Hz samplers the paper's Tables V and VI are
// built from: per-interval CPU/GPU utilization and power readings,
// plus whole-run per-node utilization shares.
package power

import (
	"sort"
	"time"

	"repro/internal/mathx"
	"repro/internal/platform"
)

// CPUModel parameterizes socket power: idle floor plus a per-active-core
// dynamic term.
type CPUModel struct {
	Idle          float64 // watts with no load
	PerCoreActive float64 // watts per fully busy core
}

// DefaultCPUModel approximates the paper's desktop part (~43 W mean
// under the stack's light load).
func DefaultCPUModel() CPUModel {
	return CPUModel{Idle: 37, PerCoreActive: 5.5}
}

// Sample is one 1 Hz reading.
type Sample struct {
	At      time.Duration
	CPUUtil float64 // busy cores / total cores, 0..1
	GPUUtil float64 // busy fraction, 0..1
	CPUW    float64
	GPUW    float64
}

// Sampler periodically reads the platform counters, like the paper's
// atop + nvidia-smi loop.
type Sampler struct {
	cpuModel CPUModel
	cpu      *platform.CPU
	gpu      *platform.GPU
	interval time.Duration

	samples []Sample

	lastCPUBusy float64
	lastGPUBusy float64
	lastGPUDynE float64
}

// NewSampler builds a sampler; call Start to begin the 1 Hz schedule.
func NewSampler(cpuModel CPUModel, cpu *platform.CPU, gpu *platform.GPU) *Sampler {
	return &Sampler{
		cpuModel: cpuModel,
		cpu:      cpu,
		gpu:      gpu,
		interval: time.Second,
	}
}

// Start schedules periodic sampling on the simulation.
func (s *Sampler) Start(sim *platform.Sim) {
	var tick func()
	tick = func() {
		s.take(sim.Now())
		sim.After(s.interval, tick)
	}
	sim.After(s.interval, tick)
}

func (s *Sampler) take(at time.Duration) {
	sec := s.interval.Seconds()
	cpuBusy := s.cpu.BusyTotal()
	gpuBusy := s.gpu.BusyTotal()
	gpuDynE := s.gpu.DynEnergy()

	busyCores := (cpuBusy - s.lastCPUBusy) / sec
	gpuFrac := (gpuBusy - s.lastGPUBusy) / sec
	if gpuFrac > 1 {
		gpuFrac = 1
	}
	dynW := (gpuDynE - s.lastGPUDynE) / sec

	s.samples = append(s.samples, Sample{
		At:      at,
		CPUUtil: busyCores / float64(s.cpu.Config().Cores),
		GPUUtil: gpuFrac,
		CPUW:    s.cpuModel.Idle + s.cpuModel.PerCoreActive*busyCores,
		GPUW:    s.gpu.Config().IdlePower + dynW,
	})
	s.lastCPUBusy = cpuBusy
	s.lastGPUBusy = gpuBusy
	s.lastGPUDynE = gpuDynE
}

// Samples returns the collected series.
func (s *Sampler) Samples() []Sample { return s.samples }

// MeanCPUPower returns the average CPU power over all samples.
func (s *Sampler) MeanCPUPower() float64 { return s.mean(func(x Sample) float64 { return x.CPUW }) }

// MeanGPUPower returns the average GPU power over all samples.
func (s *Sampler) MeanGPUPower() float64 { return s.mean(func(x Sample) float64 { return x.GPUW }) }

// MeanCPUUtil returns the average CPU utilization (0..1).
func (s *Sampler) MeanCPUUtil() float64 { return s.mean(func(x Sample) float64 { return x.CPUUtil }) }

// MeanGPUUtil returns the average GPU utilization (0..1).
func (s *Sampler) MeanGPUUtil() float64 { return s.mean(func(x Sample) float64 { return x.GPUUtil }) }

func (s *Sampler) mean(f func(Sample) float64) float64 {
	if len(s.samples) == 0 {
		return 0
	}
	var w mathx.Welford
	for _, smp := range s.samples {
		w.Add(f(smp))
	}
	return w.Mean()
}

// Energy integrates total energy in joules over the sampled window.
func (s *Sampler) Energy() float64 {
	sec := s.interval.Seconds()
	var e float64
	for _, smp := range s.samples {
		e += (smp.CPUW + smp.GPUW) * sec
	}
	return e
}

// UtilizationRow is one row of the Table V-style report.
type UtilizationRow struct {
	Node     string
	CPUShare float64 // core-seconds / (cores * horizon), like atop %CPU/cores
	GPUShare float64 // busy-seconds / horizon
}

// UtilizationReport summarizes per-node platform shares over a horizon,
// sorted by CPU share descending (the Table V ordering).
func UtilizationReport(cpu *platform.CPU, gpu *platform.GPU, horizon time.Duration) []UtilizationRow {
	sec := horizon.Seconds()
	if sec <= 0 {
		return nil
	}
	rows := map[string]*UtilizationRow{}
	get := func(name string) *UtilizationRow {
		r := rows[name]
		if r == nil {
			r = &UtilizationRow{Node: name}
			rows[name] = r
		}
		return r
	}
	for node, busy := range cpu.BusyByOwner() {
		get(node).CPUShare = busy / sec / float64(cpu.Config().Cores)
	}
	for node, busy := range gpu.BusyByOwner() {
		get(node).GPUShare = busy / sec
	}
	out := make([]UtilizationRow, 0, len(rows))
	for _, r := range rows {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].CPUShare != out[j].CPUShare {
			return out[i].CPUShare > out[j].CPUShare
		}
		return out[i].Node < out[j].Node
	})
	return out
}
