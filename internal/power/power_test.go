package power

import (
	"math"
	"testing"
	"time"

	"repro/internal/platform"
	"repro/internal/work"
)

func TestSamplerIdleReadsIdlePower(t *testing.T) {
	sim := platform.NewSim()
	cpu := platform.NewCPU(platform.DefaultCPUConfig(), sim)
	gpu := platform.NewGPU(platform.DefaultGPUConfig(), sim)
	s := NewSampler(DefaultCPUModel(), cpu, gpu)
	s.Start(sim)
	sim.Run(5 * time.Second)
	if len(s.Samples()) != 5 {
		t.Fatalf("samples = %d", len(s.Samples()))
	}
	if got := s.MeanCPUPower(); got != DefaultCPUModel().Idle {
		t.Errorf("idle CPU power = %v", got)
	}
	if got := s.MeanGPUPower(); got != gpu.Config().IdlePower {
		t.Errorf("idle GPU power = %v", got)
	}
	if s.MeanCPUUtil() != 0 || s.MeanGPUUtil() != 0 {
		t.Error("idle utilization should be zero")
	}
}

func TestSamplerTracksLoad(t *testing.T) {
	sim := platform.NewSim()
	cpu := platform.NewCPU(platform.DefaultCPUConfig(), sim)
	gpu := platform.NewGPU(platform.DefaultGPUConfig(), sim)
	s := NewSampler(DefaultCPUModel(), cpu, gpu)
	s.Start(sim)
	// Keep one core fully busy: submit a 10-second task.
	cpu.Submit("hog", 10, 0, func() {})
	// Keep the GPU ~50% busy: a 0.5 s dense kernel each second.
	for i := 0; i < 10; i++ {
		at := time.Duration(i) * time.Second
		sim.Schedule(at, func() {
			gpu.Submit("g", []work.GPUKernel{{FMAs: 4.4e12 * 0.5 * 0.6, Efficiency: 0.6}})
		})
	}
	sim.Run(10 * time.Second)
	wantCPUUtil := 1.0 / float64(cpu.Config().Cores)
	if got := s.MeanCPUUtil(); math.Abs(got-wantCPUUtil) > 0.01 {
		t.Errorf("cpu util = %v, want %v", got, wantCPUUtil)
	}
	if got := s.MeanGPUUtil(); math.Abs(got-0.5) > 0.05 {
		t.Errorf("gpu util = %v, want ~0.5", got)
	}
	// CPU power = idle + 1 core active.
	m := DefaultCPUModel()
	if got := s.MeanCPUPower(); math.Abs(got-(m.Idle+m.PerCoreActive)) > 0.5 {
		t.Errorf("cpu power = %v", got)
	}
	// GPU power > idle under load.
	if s.MeanGPUPower() <= gpu.Config().IdlePower+10 {
		t.Errorf("gpu power = %v", s.MeanGPUPower())
	}
	if s.Energy() <= 0 {
		t.Error("energy should accumulate")
	}
}

func TestUtilizationReport(t *testing.T) {
	sim := platform.NewSim()
	cpu := platform.NewCPU(platform.DefaultCPUConfig(), sim)
	gpu := platform.NewGPU(platform.DefaultGPUConfig(), sim)
	cpu.Submit("big", 4, 0, func() {})
	cpu.Submit("small", 1, 0, func() {})
	gpu.Submit("big", []work.GPUKernel{{FMAs: 4.4e12, Efficiency: 1}}) // 1 s
	sim.Run(10 * time.Second)
	rows := UtilizationReport(cpu, gpu, 10*time.Second)
	if len(rows) != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	// Sorted by CPU share descending.
	if rows[0].Node != "big" || rows[1].Node != "small" {
		t.Errorf("ordering = %v, %v", rows[0].Node, rows[1].Node)
	}
	wantBig := 4.0 / 10 / float64(cpu.Config().Cores)
	if math.Abs(rows[0].CPUShare-wantBig) > 1e-6 {
		t.Errorf("big cpu share = %v, want %v", rows[0].CPUShare, wantBig)
	}
	if math.Abs(rows[0].GPUShare-0.1) > 1e-4 { // launch overhead included
		t.Errorf("big gpu share = %v, want 0.1", rows[0].GPUShare)
	}
	if UtilizationReport(cpu, gpu, 0) != nil {
		t.Error("zero horizon should yield nil")
	}
}
