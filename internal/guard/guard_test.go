package guard

import (
	"math"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/msgs"
	"repro/internal/nodes/filters"
	"repro/internal/platform"
	"repro/internal/pointcloud"
	"repro/internal/ros"
)

// cloudMsg builds a clean n-point cloud payload.
func cloudMsg(n int) *msgs.PointCloud {
	c := pointcloud.New(n)
	for i := 0; i < n; i++ {
		c.Append(pointcloud.Point{Pos: geom.Vec3{X: float64(i), Y: 1, Z: 0.2}, Intensity: 0.5})
	}
	return &msgs.PointCloud{Cloud: c}
}

// TestGuardVerdicts walks one frame through each quarantine cause and
// the accept paths, pinning the verdict, the cause string and the
// counter each one lands in.
func TestGuardVerdicts(t *testing.T) {
	nanCloud := cloudMsg(4)
	nanCloud.Cloud.Points[2].Pos.X = math.NaN()
	farCloud := cloudMsg(4)
	farCloud.Cloud.Points[0].Pos.Y = 2 * MaxAbsCoord

	cases := []struct {
		name string
		// arrivals on /points_raw: (stamp, payload, now) triples played
		// in order; want holds the expected cause per arrival ("" = accept).
		arrivals []struct {
			stamp, now time.Duration
			payload    any
		}
		want []string
	}{
		{
			name: "clean stream accepts",
			arrivals: []struct {
				stamp, now time.Duration
				payload    any
			}{
				{100 * time.Millisecond, 105 * time.Millisecond, cloudMsg(3)},
				{200 * time.Millisecond, 205 * time.Millisecond, cloudMsg(3)},
			},
			want: []string{"", ""},
		},
		{
			name: "NaN point is malformed",
			arrivals: []struct {
				stamp, now time.Duration
				payload    any
			}{{100 * time.Millisecond, 105 * time.Millisecond, nanCloud}},
			want: []string{CauseMalformed},
		},
		{
			name: "out-of-range point is malformed",
			arrivals: []struct {
				stamp, now time.Duration
				payload    any
			}{{100 * time.Millisecond, 105 * time.Millisecond, farCloud}},
			want: []string{CauseMalformed},
		},
		{
			name: "future stamp beyond tolerance",
			arrivals: []struct {
				stamp, now time.Duration
				payload    any
			}{{200 * time.Millisecond, 100 * time.Millisecond, cloudMsg(3)}},
			want: []string{CauseFutureStamp},
		},
		{
			name: "duplicate stamp",
			arrivals: []struct {
				stamp, now time.Duration
				payload    any
			}{
				{100 * time.Millisecond, 105 * time.Millisecond, cloudMsg(3)},
				{100 * time.Millisecond, 205 * time.Millisecond, cloudMsg(3)},
			},
			want: []string{"", CauseDuplicate},
		},
		{
			name: "rewind beyond holdback",
			arrivals: []struct {
				stamp, now time.Duration
				payload    any
			}{
				{time.Second, time.Second, cloudMsg(3)},
				{500 * time.Millisecond, 1100 * time.Millisecond, cloudMsg(3)},
			},
			want: []string{"", CauseStampRewind},
		},
		{
			name: "late within holdback is admitted",
			arrivals: []struct {
				stamp, now time.Duration
				payload    any
			}{
				{time.Second, time.Second, cloudMsg(3)},
				{900 * time.Millisecond, 1100 * time.Millisecond, cloudMsg(3)},
			},
			want: []string{"", ""},
		},
		{
			name: "malformed wins over mistimed",
			arrivals: []struct {
				stamp, now time.Duration
				payload    any
			}{
				// The NaN frame is also a duplicate and far in the future;
				// corruption is the root cause, so it must win attribution.
				{100 * time.Millisecond, 105 * time.Millisecond, cloudMsg(3)},
				{10 * time.Second, 200 * time.Millisecond, nanCloud},
			},
			want: []string{"", CauseMalformed},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := New(Config{})
			var wantAccepted, wantQuarantined uint64
			for i, a := range tc.arrivals {
				v := g.Inspect(filters.TopicPointsRaw, a.stamp, a.payload, a.now)
				want := tc.want[i]
				if want == "" {
					wantAccepted++
					if v.Quarantine {
						t.Errorf("arrival %d quarantined (%s), want accept", i, v.Cause)
					}
					continue
				}
				wantQuarantined++
				if !v.Quarantine || v.Cause != want {
					t.Errorf("arrival %d verdict = %+v, want quarantine cause %q", i, v, want)
				}
			}
			if g.Accepted() != wantAccepted || g.Quarantined() != wantQuarantined {
				t.Errorf("counters = accepted %d quarantined %d, want %d, %d",
					g.Accepted(), g.Quarantined(), wantAccepted, wantQuarantined)
			}
		})
	}
}

// TestGuardReorderTolerance checks the reorder buffer semantics: a
// straggler within the holdback is admitted without advancing the
// high-water mark, so the following in-order frame is still measured
// against the true head.
func TestGuardReorderTolerance(t *testing.T) {
	g := New(Config{})
	stamps := []time.Duration{
		100 * time.Millisecond,
		200 * time.Millisecond,
		150 * time.Millisecond, // straggler, within 150ms holdback of 200ms
		300 * time.Millisecond,
	}
	for i, s := range stamps {
		if v := g.Inspect(filters.TopicPointsRaw, s, cloudMsg(2), s+5*time.Millisecond); v.Quarantine {
			t.Fatalf("frame %d (stamp %v) quarantined: %s", i, s, v.Cause)
		}
	}
	if g.Reordered() != 1 {
		t.Errorf("reordered = %d, want 1", g.Reordered())
	}
	if g.Accepted() != 4 {
		t.Errorf("accepted = %d, want 4", g.Accepted())
	}
	// The straggler must not have dragged the head back: 100->200->300
	// gives an EWMA period of 100ms exactly.
	if p := g.Period(filters.TopicPointsRaw); p != 100*time.Millisecond {
		t.Errorf("period = %v, want 100ms (head must ignore the straggler)", p)
	}
}

// TestGuardCounts pins the (topic, cause) aggregation and its ordering.
func TestGuardCounts(t *testing.T) {
	g := New(Config{})
	nan := cloudMsg(1)
	nan.Cloud.Points[0].Intensity = math.Inf(1)

	g.Inspect("/a", 100*time.Millisecond, nil, 100*time.Millisecond) // accept (no validator)
	g.Inspect("/a", 100*time.Millisecond, nil, 200*time.Millisecond) // dup
	g.Inspect("/a", 100*time.Millisecond, nil, 300*time.Millisecond) // dup
	g.Inspect("/a", 10*time.Second, nil, 300*time.Millisecond)       // future
	g.Inspect(filters.TopicPointsRaw, 0, nan, 10*time.Millisecond)   // malformed
	want := []CauseCount{
		{Topic: "/a", Cause: CauseDuplicate, Count: 2},
		{Topic: "/a", Cause: CauseFutureStamp, Count: 1},
		{Topic: filters.TopicPointsRaw, Cause: CauseMalformed, Count: 1},
	}
	got := g.Counts()
	if len(got) != len(want) {
		t.Fatalf("counts = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("counts[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestGuardRegistryOverride installs a custom registry: the overridden
// topic uses the custom rule, and topics the default registry would
// have guarded pass unchecked.
func TestGuardRegistryOverride(t *testing.T) {
	reg := NewRegistry()
	reg.Register("/custom", func(p any) error {
		if p == "poison" {
			return ErrMissingPayload
		}
		return nil
	})
	g := New(Config{Validators: reg})

	if v := g.Inspect("/custom", time.Millisecond, "poison", time.Millisecond); !v.Quarantine {
		t.Error("custom validator was not consulted")
	}
	if v := g.Inspect("/custom", 2*time.Millisecond, "fine", 2*time.Millisecond); v.Quarantine {
		t.Errorf("clean payload quarantined: %s", v.Cause)
	}
	// /points_raw has no validator in the custom registry: a NaN cloud
	// passes payload checks (time checks still apply).
	nan := cloudMsg(1)
	nan.Cloud.Points[0].Pos.Z = math.NaN()
	if v := g.Inspect(filters.TopicPointsRaw, time.Millisecond, nan, time.Millisecond); v.Quarantine {
		t.Errorf("unregistered topic was payload-checked: %s", v.Cause)
	}
}

// TestGuardAttachChaining wires the guard behind an existing ingress
// filter and checks the chain contract: a prior quarantine verdict
// wins (the guard never resurrects a frame), and frames the prior
// filter passes still face the guard.
func TestGuardAttachChaining(t *testing.T) {
	sim := platform.NewSim()
	ex := platform.NewExecutor(sim,
		platform.NewCPU(platform.DefaultCPUConfig(), sim),
		platform.NewGPU(platform.DefaultGPUConfig(), sim),
		ros.NewBus(), nil)
	ex.IngressFilter = func(topic string, stamp time.Duration, payload any, now time.Duration) platform.IngressVerdict {
		if topic == "/blocked" {
			return platform.IngressVerdict{Quarantine: true, Cause: "upstream-policy"}
		}
		return platform.IngressVerdict{}
	}
	g := New(Config{})
	g.Attach(ex)

	if v := ex.IngressFilter("/blocked", time.Millisecond, nil, time.Millisecond); !v.Quarantine || v.Cause != "upstream-policy" {
		t.Errorf("prior verdict did not win: %+v", v)
	}
	if g.Quarantined() != 0 {
		t.Error("guard charged a frame the upstream filter already quarantined")
	}
	// A frame the upstream filter passes still faces the guard.
	if v := ex.IngressFilter("/t", 10*time.Second, nil, time.Millisecond); !v.Quarantine || v.Cause != CauseFutureStamp {
		t.Errorf("guard did not inspect a passed frame: %+v", v)
	}
}

// TestGuardDefaults pins the documented default tuning.
func TestGuardDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Holdback != 150*time.Millisecond {
		t.Errorf("Holdback default = %v", cfg.Holdback)
	}
	if cfg.FutureTolerance != 10*time.Millisecond {
		t.Errorf("FutureTolerance default = %v", cfg.FutureTolerance)
	}
	if cfg.DupWindow != 32 {
		t.Errorf("DupWindow default = %d", cfg.DupWindow)
	}
	if cfg.Validators == nil || cfg.Validators.For(filters.TopicPointsRaw) == nil {
		t.Error("default registry must guard /points_raw")
	}
}

// TestGuardDupWindowBounded checks the dup ring forgets: a stamp older
// than the window's reach is no longer flagged as a duplicate (it is
// handled by the rewind rule instead).
func TestGuardDupWindowBounded(t *testing.T) {
	g := New(Config{DupWindow: 4, Holdback: time.Hour})
	base := time.Second
	for i := 0; i < 5; i++ {
		s := base + time.Duration(i)*100*time.Millisecond
		if v := g.Inspect("/t", s, nil, s); v.Quarantine {
			t.Fatalf("frame %d quarantined: %s", i, v.Cause)
		}
	}
	// base was evicted from the 4-slot ring by the 5th accept; with the
	// huge holdback it re-enters as a tolerated straggler.
	if v := g.Inspect("/t", base, nil, 2*time.Second); v.Quarantine {
		t.Errorf("stamp outside dup window still flagged: %s", v.Cause)
	}
	// The newest stamp is still remembered.
	if v := g.Inspect("/t", base+400*time.Millisecond, nil, 2*time.Second); !v.Quarantine || v.Cause != CauseDuplicate {
		t.Errorf("in-window duplicate not flagged: %+v", v)
	}
}
