package guard

import (
	"testing"
	"time"

	"repro/internal/nodes/filters"
)

// BenchmarkGuardHotPath measures the accept path — a clean in-order
// cloud through payload validation and time sanitization — which runs
// on every frame of every guarded topic. It must not allocate: the
// guard sits ahead of the perception pipeline's zero-alloc hot paths
// and would otherwise reintroduce the GC pressure they removed.
func BenchmarkGuardHotPath(b *testing.B) {
	g := New(Config{})
	payload := cloudMsg(2048)
	period := 100 * time.Millisecond
	// Prime the topic clock so the steady state is measured.
	g.Inspect(filters.TopicPointsRaw, period, payload, period)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stamp := time.Duration(i+2) * period
		if v := g.Inspect(filters.TopicPointsRaw, stamp, payload, stamp); v.Quarantine {
			b.Fatalf("clean frame quarantined: %s", v.Cause)
		}
	}
}

// TestGuardAcceptPathZeroAlloc is the hard form of the benchmark's
// allocs/op: the accept path may not allocate at all.
func TestGuardAcceptPathZeroAlloc(t *testing.T) {
	g := New(Config{})
	payload := cloudMsg(64)
	stamp := 100 * time.Millisecond
	g.Inspect(filters.TopicPointsRaw, stamp, payload, stamp)

	allocs := testing.AllocsPerRun(1000, func() {
		stamp += 100 * time.Millisecond
		if v := g.Inspect(filters.TopicPointsRaw, stamp, payload, stamp); v.Quarantine {
			t.Fatalf("clean frame quarantined: %s", v.Cause)
		}
	})
	if allocs != 0 {
		t.Errorf("accept path allocates %.1f times per frame, want 0", allocs)
	}
}
