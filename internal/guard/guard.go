// Package guard is the bus-level input-integrity layer: a chain of
// payload validation and time sanitization that sits at the executor's
// ingress point — after transport, before any subscriber queue — and
// quarantines frames a corrupted sensor or transport produced.
//
// Hook point and ordering. The guard owns the executor's IngressFilter
// and is the second layer in the decision chain — the fault injector
// perturbs at publish upstream of it; the supervisor (dispatch) and
// the scheduler (the pick itself) sit downstream: the supervisor
// reacts to nodes that crashed while the guard keeps poisoned inputs
// (NaN clouds, rewound stamps, duplicated frames) from reaching node
// state in the first place, and a quarantined frame is never enqueued,
// so neither the supervisor nor the scheduler ever sees it.
// Guard.Attach chains behind any existing ingress filter and an
// earlier quarantine verdict wins — the guard never resurrects a
// frame.
//
// Ownership. The ingress hook borrows the message for the call only;
// a quarantine verdict hands the envelope's ingress reference back to
// the bus for release, and an accept passes it through untouched — the
// guard retains nothing and the transport's refcount ledger balances
// identically with or without it.
//
// The guard is deterministic and side-effect-free on clean input: it
// draws no randomness, schedules no events, and its accept path
// allocates nothing, so a guarded run over a clean stream is
// byte-identical to an unguarded one.
package guard

import (
	"sort"
	"time"

	"repro/internal/platform"
)

// Quarantine causes, recorded per rejected frame.
const (
	// CauseMalformed marks payload validation failures (NaN/Inf fields,
	// degenerate boxes, torn records).
	CauseMalformed = "malformed-payload"
	// CauseStampRewind marks stamps older than the per-topic high-water
	// mark by more than the holdback — a rewound sensor clock.
	CauseStampRewind = "stamp-rewind"
	// CauseDuplicate marks stamps already seen within the dup window —
	// a duplicating driver or retransmitting transport.
	CauseDuplicate = "duplicate-stamp"
	// CauseFutureStamp marks stamps ahead of arrival time by more than
	// the future tolerance — a fast sensor clock.
	CauseFutureStamp = "future-stamp"
)

// PointIngress names the guard's detection point in integrity traces.
const PointIngress = "ingress"

// Config tunes the guard.
type Config struct {
	// Holdback bounds tolerated reordering: a stamp within Holdback of
	// the topic's newest accepted stamp is admitted late (counted as
	// reordered); older than that is quarantined as a rewind.
	// Default 150ms.
	Holdback time.Duration
	// FutureTolerance bounds how far ahead of arrival time a stamp may
	// run before it is quarantined. Default 10ms.
	FutureTolerance time.Duration
	// DupWindow is how many recent stamps per topic are remembered for
	// duplicate detection. Default 32.
	DupWindow int
	// Validators maps topics to payload validators; nil uses
	// DefaultRegistry. Topics without a validator skip payload checks
	// but still get time sanitization.
	Validators *Registry
}

func (c Config) withDefaults() Config {
	if c.Holdback <= 0 {
		c.Holdback = 150 * time.Millisecond
	}
	if c.FutureTolerance <= 0 {
		c.FutureTolerance = 10 * time.Millisecond
	}
	if c.DupWindow <= 0 {
		c.DupWindow = 32
	}
	if c.Validators == nil {
		c.Validators = DefaultRegistry()
	}
	return c
}

// topicClock is the per-topic clock model: the newest accepted stamp
// (high-water mark), an EWMA of the inter-arrival period, and a ring
// of recent stamps for duplicate detection.
type topicClock struct {
	head     time.Duration // newest accepted stamp
	period   float64       // EWMA inter-arrival, seconds
	seen     uint64        // accepted frames
	recent   []time.Duration
	recentN  int // valid entries in recent
	recentAt int // next ring slot
}

func (tc *topicClock) remember(stamp time.Duration) {
	tc.recent[tc.recentAt] = stamp
	tc.recentAt = (tc.recentAt + 1) % len(tc.recent)
	if tc.recentN < len(tc.recent) {
		tc.recentN++
	}
}

func (tc *topicClock) isDuplicate(stamp time.Duration) bool {
	for i := 0; i < tc.recentN; i++ {
		if tc.recent[i] == stamp {
			return true
		}
	}
	return false
}

// CauseCount is one (topic, cause) quarantine counter.
type CauseCount struct {
	Topic string
	Cause string
	Count int
}

type causeKey struct {
	topic, cause string
}

// Guard inspects every bus arrival and quarantines frames that fail
// payload validation or time sanitization. Create with New, wire with
// Attach.
type Guard struct {
	cfg    Config
	clocks map[string]*topicClock
	counts map[causeKey]int

	accepted    uint64
	quarantined uint64
	reordered   uint64
}

// New creates a guard; zero-value fields of cfg take defaults.
func New(cfg Config) *Guard {
	return &Guard{
		cfg:    cfg.withDefaults(),
		clocks: make(map[string]*topicClock),
		counts: make(map[causeKey]int),
	}
}

// Attach chains the guard onto the executor's ingress filter, in front
// of any filter already installed (an earlier quarantine verdict wins;
// the guard never resurrects a frame).
func (g *Guard) Attach(ex *platform.Executor) {
	prev := ex.IngressFilter
	ex.IngressFilter = func(topic string, stamp time.Duration, payload any, now time.Duration) platform.IngressVerdict {
		if prev != nil {
			if v := prev(topic, stamp, payload, now); v.Quarantine {
				return v
			}
		}
		return g.Inspect(topic, stamp, payload, now)
	}
}

// Inspect adjudicates one arrival. Check order: payload validation,
// then future stamp, then duplicate, then rewind — so a frame that is
// both malformed and mistimed is attributed to the corruption, which
// is the root cause.
func (g *Guard) Inspect(topic string, stamp time.Duration, payload any, now time.Duration) platform.IngressVerdict {
	if v := g.cfg.Validators.For(topic); v != nil {
		if err := v(payload); err != nil {
			return g.quarantine(topic, CauseMalformed)
		}
	}

	tc := g.clocks[topic]
	if tc == nil {
		tc = &topicClock{recent: make([]time.Duration, g.cfg.DupWindow)}
		g.clocks[topic] = tc
	}

	if stamp > now+g.cfg.FutureTolerance {
		return g.quarantine(topic, CauseFutureStamp)
	}
	if tc.isDuplicate(stamp) {
		return g.quarantine(topic, CauseDuplicate)
	}
	if tc.seen > 0 && stamp < tc.head {
		if tc.head-stamp > g.cfg.Holdback {
			return g.quarantine(topic, CauseStampRewind)
		}
		// Late but within holdback: admit without advancing the
		// high-water mark, like a reorder buffer releasing a straggler.
		g.reordered++
	} else {
		if tc.seen > 0 && stamp > tc.head {
			dt := (stamp - tc.head).Seconds()
			if tc.period == 0 {
				tc.period = dt
			} else {
				tc.period += 0.125 * (dt - tc.period)
			}
		}
		tc.head = stamp
	}
	tc.seen++
	tc.remember(stamp)
	g.accepted++
	return platform.IngressVerdict{}
}

func (g *Guard) quarantine(topic, cause string) platform.IngressVerdict {
	g.quarantined++
	g.counts[causeKey{topic, cause}]++
	return platform.IngressVerdict{Quarantine: true, Cause: cause}
}

// Accepted returns how many frames passed inspection.
func (g *Guard) Accepted() uint64 { return g.accepted }

// Quarantined returns how many frames were rejected.
func (g *Guard) Quarantined() uint64 { return g.quarantined }

// Reordered returns how many frames were admitted late (within the
// holdback) without advancing the topic clock.
func (g *Guard) Reordered() uint64 { return g.reordered }

// Counts returns per-(topic, cause) quarantine counters, sorted by
// topic then cause.
func (g *Guard) Counts() []CauseCount {
	out := make([]CauseCount, 0, len(g.counts))
	for k, n := range g.counts {
		out = append(out, CauseCount{Topic: k.topic, Cause: k.cause, Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Topic != out[j].Topic {
			return out[i].Topic < out[j].Topic
		}
		return out[i].Cause < out[j].Cause
	})
	return out
}

// Period returns the EWMA inter-arrival period the clock model holds
// for a topic, zero before two in-order frames arrived.
func (g *Guard) Period(topic string) time.Duration {
	tc := g.clocks[topic]
	if tc == nil {
		return 0
	}
	return time.Duration(tc.period * float64(time.Second))
}
