package guard

import (
	"encoding/binary"
	"math"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/msgs"
	"repro/internal/nodes/filters"
	"repro/internal/nodes/localization"
	"repro/internal/nodes/tracking"
	"repro/internal/pointcloud"
)

// payloadFromBytes deterministically reinterprets fuzz input as sensor
// payloads: consecutive 8-byte windows become float64 bit patterns, so
// the fuzzer reaches NaNs, infinities, denormals and huge exponents —
// exactly the bit-flip corruption the guard exists to stop.
func payloadFromBytes(data []byte) (cloud *msgs.PointCloud, dets *msgs.DetectedObjectArray, pose *msgs.PoseStamped) {
	f := func(i int) float64 {
		if (i+1)*8 > len(data) {
			return 0
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
	}
	nf := len(data) / 8

	c := pointcloud.New(nf/4 + 1)
	for i := 0; i+3 < nf; i += 4 {
		c.Append(pointcloud.Point{
			Pos:       geom.Vec3{X: f(i), Y: f(i + 1), Z: f(i + 2)},
			Intensity: f(i + 3),
		})
	}
	cloud = &msgs.PointCloud{Cloud: c}

	dets = &msgs.DetectedObjectArray{}
	for i := 0; i+5 < nf; i += 6 {
		dets.Objects = append(dets.Objects, msgs.DetectedObject{
			Pose:     geom.Pose{Pos: geom.Vec3{X: f(i), Y: f(i + 1)}, Yaw: f(i + 2)},
			Dim:      geom.Vec3{X: f(i + 3), Y: f(i + 4), Z: 1},
			Score:    f(i + 5),
			Velocity: geom.Vec2{X: f(i), Y: f(i + 1)},
		})
	}

	pose = &msgs.PoseStamped{
		Pose:    geom.Pose{Pos: geom.Vec3{X: f(0), Y: f(1), Z: f(2)}, Yaw: f(3)},
		Fitness: f(4),
	}
	return cloud, dets, pose
}

// FuzzGuardValidate feeds arbitrary bit patterns through the validator
// registry and the full guard pipeline. Invariants: no validator ever
// panics, every Inspect returns a verdict whose Quarantine flag and
// Cause agree, and a payload the validators reject is always
// quarantined with CauseMalformed regardless of its stamp.
func FuzzGuardValidate(f *testing.F) {
	nan := math.Float64bits(math.NaN())
	inf := math.Float64bits(math.Inf(1))
	seed := func(words ...uint64) []byte {
		out := make([]byte, 8*len(words))
		for i, w := range words {
			binary.LittleEndian.PutUint64(out[i*8:], w)
		}
		return out
	}
	f.Add([]byte{})
	f.Add(seed(0x3FF0000000000000, 0x4000000000000000, 0x4008000000000000, 0x3FE0000000000000)) // clean 1,2,3 point
	f.Add(seed(nan, 0, 0, 0))                                                                   // NaN X
	f.Add(seed(0, inf, 0, 0))                                                                   // +Inf Y
	f.Add(seed(0x7FE0000000000000, 0, 0, 0))                                                    // huge exponent, out of range
	f.Add(seed(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12))                                          // denormal soup

	f.Fuzz(func(t *testing.T, data []byte) {
		cloud, dets, pose := payloadFromBytes(data)

		// Validators must classify, never panic.
		cloudErr := ValidatePointCloud(cloud)
		detsErr := ValidateDetections(dets)
		poseErr := ValidatePose(pose)
		_ = tracking.ValidateDetections(dets)

		// Stamp and arrival time derive from the input too, so time
		// sanitization sees adversarial values alongside the payloads.
		var stamp, now time.Duration
		if len(data) >= 8 {
			stamp = time.Duration(binary.LittleEndian.Uint64(data))
		}
		if len(data) >= 16 {
			now = time.Duration(binary.LittleEndian.Uint64(data[8:]))
		}

		g := New(Config{})
		for _, in := range []struct {
			topic   string
			payload any
			bad     bool
		}{
			{filters.TopicPointsRaw, cloud, cloudErr != nil},
			{tracking.TopicObjects, dets, detsErr != nil},
			{localization.TopicCurrentPose, pose, poseErr != nil},
		} {
			v := g.Inspect(in.topic, stamp, in.payload, now)
			if v.Quarantine != (v.Cause != "") {
				t.Fatalf("inconsistent verdict on %s: %+v", in.topic, v)
			}
			if in.bad && g.cfg.Validators.For(in.topic) != nil {
				if !v.Quarantine || v.Cause != CauseMalformed {
					t.Fatalf("invalid payload on %s escaped: %+v", in.topic, v)
				}
			}
		}
		if g.Accepted()+g.Quarantined() != 3 {
			t.Fatalf("frames leaked: accepted %d quarantined %d", g.Accepted(), g.Quarantined())
		}
	})
}
