package guard

import (
	"testing"
	"time"

	"repro/internal/platform"
	"repro/internal/ros"
)

// TestGuardQuarantineReleasesEnvelope pins the pool side of the
// quarantine path: every arrival materializes a pooled envelope before
// the ingress filter runs, so a quarantine verdict must hand that
// envelope straight back — a guard that diverts frames but leaks their
// envelopes would bleed the pool dry under a corruption storm.
func TestGuardQuarantineReleasesEnvelope(t *testing.T) {
	sim := platform.NewSim()
	ex := platform.NewExecutor(sim,
		platform.NewCPU(platform.DefaultCPUConfig(), sim),
		platform.NewGPU(platform.DefaultGPUConfig(), sim),
		ros.NewBus(), nil)
	sub := ex.Bus.Subscribe("probe", ros.SubSpec{Topic: "/t", Depth: 0})
	g := New(Config{})
	g.Attach(ex)

	// Two publications with identical stamps: the guard accepts the
	// first and quarantines the second as a duplicate.
	ex.Publish("/t", 7)
	ex.Publish("/t", 7)
	sim.Run(time.Second)

	if q := g.Quarantined(); q != 1 {
		t.Fatalf("quarantined = %d, want 1 (counts %+v)", q, g.Counts())
	}
	ps := ex.Bus.PoolStats()
	if ps.Acquired != 2 {
		t.Fatalf("acquired = %d envelopes for 2 arrivals", ps.Acquired)
	}
	if ps.Live != 1 || ps.LiveRefs != 1 {
		t.Fatalf("after quarantine: %+v, want exactly the accepted frame live", ps)
	}
	if sub.Queue.Len() != 1 {
		t.Fatalf("queued = %d, want 1", sub.Queue.Len())
	}

	// Draining the accepted frame closes the ledger completely.
	sub.Queue.Pop().Release()
	if ps := ex.Bus.PoolStats(); ps.Live != 0 || ps.LiveRefs != 0 {
		t.Fatalf("after drain: %+v", ps)
	}
}
