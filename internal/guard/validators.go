package guard

import (
	"errors"
	"math"

	"repro/internal/msgs"
	"repro/internal/nodes/costmap"
	"repro/internal/nodes/filters"
	"repro/internal/nodes/fusion"
	"repro/internal/nodes/lidardet"
	"repro/internal/nodes/localization"
	"repro/internal/nodes/motion"
	"repro/internal/nodes/planning"
	"repro/internal/nodes/prediction"
	"repro/internal/nodes/tracking"
	"repro/internal/nodes/visiondet"
)

// Validator checks one payload; non-nil means quarantine. Validators
// must be allocation-free on clean input (return sentinel errors) —
// they run on every frame of every guarded topic.
type Validator func(payload any) error

// Validation sentinels shared by the built-in validators.
var (
	// ErrWrongType flags a payload of a type the topic never carries.
	ErrWrongType = errors.New("guard: payload type does not match topic")
	// ErrMissingPayload flags a nil payload or nil required sub-object.
	ErrMissingPayload = errors.New("guard: payload missing required data")
	// ErrNonFinitePoint flags a NaN/Inf cloud point or intensity.
	ErrNonFinitePoint = errors.New("guard: cloud point is not finite")
	// ErrOutOfRangePoint flags a coordinate outside any physical sensor
	// range (an exponent bit-flip).
	ErrOutOfRangePoint = errors.New("guard: cloud point out of sensor range")
	// ErrImageGeometry flags an image whose pixel buffer does not match
	// its dimensions.
	ErrImageGeometry = errors.New("guard: image buffer does not match dimensions")
	// ErrGridGeometry flags an occupancy grid whose cell buffer does not
	// match its dimensions or whose resolution is degenerate.
	ErrGridGeometry = errors.New("guard: grid geometry degenerate")
	// ErrNonFiniteLane flags a NaN/Inf waypoint or an out-of-range best
	// index.
	ErrNonFiniteLane = errors.New("guard: lane array malformed")
	// ErrNonFiniteTwist flags a NaN/Inf velocity command.
	ErrNonFiniteTwist = errors.New("guard: twist is not finite")
)

// MaxAbsCoord bounds any plausible point coordinate in the ego or map
// frame, meters. A LiDAR return beyond it can only be a corrupted
// float, not a real surface.
const MaxAbsCoord = 1e6

// Registry maps topics to validators.
type Registry struct {
	byTopic map[string]Validator
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byTopic: make(map[string]Validator)}
}

// Register installs (or replaces) the validator for a topic. A nil
// validator removes the entry.
func (r *Registry) Register(topic string, v Validator) {
	if v == nil {
		delete(r.byTopic, topic)
		return
	}
	r.byTopic[topic] = v
}

// For returns the validator for a topic, nil when none is registered.
func (r *Registry) For(topic string) Validator {
	return r.byTopic[topic]
}

// DefaultRegistry wires every topic of the Autoware-style graph to its
// payload validator: clouds on the LiDAR chain, images, object arrays
// on the detection/tracking chain, poses and nav sensors on the
// localization chain, grids, lanes and twists downstream.
func DefaultRegistry() *Registry {
	r := NewRegistry()
	for _, t := range []string{
		filters.TopicPointsRaw, filters.TopicFilteredPoints,
		filters.TopicPointsGround, filters.TopicPointsNoGround,
	} {
		r.Register(t, ValidatePointCloud)
	}
	r.Register(visiondet.TopicImageRaw, ValidateImage)
	for _, t := range []string{
		lidardet.TopicObjects, fusion.TopicObjects,
		tracking.TopicObjects, prediction.TopicPredictedObjects,
	} {
		r.Register(t, ValidateDetections)
	}
	r.Register(localization.TopicCurrentPose, ValidatePose)
	r.Register(localization.TopicGNSS, ValidateGNSS)
	r.Register(localization.TopicIMU, ValidateIMU)
	r.Register(costmap.TopicObjectsCostmap, ValidateGrid)
	r.Register(planning.TopicGlobalRoute, ValidateLanes)
	r.Register(planning.TopicLocalPath, ValidateLanes)
	r.Register(motion.TopicTwistRaw, ValidateTwist)
	r.Register(motion.TopicTwistCmd, ValidateTwist)
	return r
}

// ValidatePointCloud rejects clouds with non-finite or physically
// impossible points.
func ValidatePointCloud(payload any) error {
	p, ok := payload.(*msgs.PointCloud)
	if !ok {
		return ErrWrongType
	}
	if p == nil || p.Cloud == nil {
		return ErrMissingPayload
	}
	for i := range p.Cloud.Points {
		pt := &p.Cloud.Points[i]
		if !finite(pt.Pos.X) || !finite(pt.Pos.Y) || !finite(pt.Pos.Z) || !finite(pt.Intensity) {
			return ErrNonFinitePoint
		}
		if pt.Pos.X > MaxAbsCoord || pt.Pos.X < -MaxAbsCoord ||
			pt.Pos.Y > MaxAbsCoord || pt.Pos.Y < -MaxAbsCoord ||
			pt.Pos.Z > MaxAbsCoord || pt.Pos.Z < -MaxAbsCoord {
			return ErrOutOfRangePoint
		}
	}
	return nil
}

// ValidateImage rejects frames whose pixel buffer disagrees with the
// declared geometry.
func ValidateImage(payload any) error {
	p, ok := payload.(*msgs.CameraImage)
	if !ok {
		return ErrWrongType
	}
	if p == nil || p.Frame == nil || p.Frame.Image == nil {
		return ErrMissingPayload
	}
	im := p.Frame.Image
	if im.W <= 0 || im.H <= 0 || len(im.Pix) != 3*im.W*im.H {
		return ErrImageGeometry
	}
	return nil
}

// ValidateDetections applies the tracker's object-array checks.
func ValidateDetections(payload any) error {
	p, ok := payload.(*msgs.DetectedObjectArray)
	if !ok {
		return ErrWrongType
	}
	if p == nil {
		return ErrMissingPayload
	}
	return tracking.ValidateDetections(p)
}

// ValidatePose applies the localizer's pose checks.
func ValidatePose(payload any) error {
	p, ok := payload.(*msgs.PoseStamped)
	if !ok {
		return ErrWrongType
	}
	if p == nil {
		return ErrMissingPayload
	}
	return localization.ValidatePose(p)
}

// ValidateGNSS applies the localizer's fix checks.
func ValidateGNSS(payload any) error {
	p, ok := payload.(*msgs.GNSS)
	if !ok {
		return ErrWrongType
	}
	if p == nil {
		return ErrMissingPayload
	}
	return localization.ValidateGNSS(p)
}

// ValidateIMU applies the localizer's inertial checks.
func ValidateIMU(payload any) error {
	p, ok := payload.(*msgs.IMU)
	if !ok {
		return ErrWrongType
	}
	if p == nil {
		return ErrMissingPayload
	}
	return localization.ValidateIMU(p)
}

// ValidateGrid rejects occupancy grids with mismatched buffers or a
// degenerate resolution/origin.
func ValidateGrid(payload any) error {
	p, ok := payload.(*msgs.OccupancyGrid)
	if !ok {
		return ErrWrongType
	}
	if p == nil {
		return ErrMissingPayload
	}
	if p.Width <= 0 || p.Height <= 0 || len(p.Data) != p.Width*p.Height {
		return ErrGridGeometry
	}
	if !finite(p.Resolution) || p.Resolution <= 0 || !finite(p.Origin.X) || !finite(p.Origin.Y) {
		return ErrGridGeometry
	}
	return nil
}

// ValidateLanes rejects lane arrays with non-finite waypoints or a
// best index outside [-1, len).
func ValidateLanes(payload any) error {
	p, ok := payload.(*msgs.LaneArray)
	if !ok {
		return ErrWrongType
	}
	if p == nil {
		return ErrMissingPayload
	}
	if p.Best < -1 || p.Best >= len(p.Lanes) {
		return ErrNonFiniteLane
	}
	for li := range p.Lanes {
		l := &p.Lanes[li]
		if !finite(l.Cost) {
			return ErrNonFiniteLane
		}
		for wi := range l.Waypoints {
			w := &l.Waypoints[wi]
			if !finite(w.Pos.X) || !finite(w.Pos.Y) || !finite(w.Yaw) || !finite(w.Speed) {
				return ErrNonFiniteLane
			}
		}
	}
	return nil
}

// ValidateTwist rejects non-finite velocity commands.
func ValidateTwist(payload any) error {
	p, ok := payload.(*msgs.TwistStamped)
	if !ok {
		return ErrWrongType
	}
	if p == nil {
		return ErrMissingPayload
	}
	if !finite(p.Twist.Linear) || !finite(p.Twist.Angular) {
		return ErrNonFiniteTwist
	}
	return nil
}

func finite(f float64) bool {
	return !math.IsNaN(f) && !math.IsInf(f, 0)
}
