// Command bagtool records, inspects and replays synthetic sensor bags —
// the reproduction's equivalent of the rosbag workflow the paper's
// methodology is built on (record once, replay identically as often as
// needed).
//
// Usage:
//
//	bagtool record -out drive.bag [-duration 30s]
//	bagtool info   -bag drive.bag
//	bagtool replay -bag drive.bag [-detector SSD512]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"repro/internal/autoware"
	"repro/internal/msgs"
	"repro/internal/nodes/filters"
	"repro/internal/nodes/localization"
	"repro/internal/nodes/visiondet"
	"repro/internal/ros"
	"repro/internal/sensor"
	"repro/internal/world"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "info":
		info(os.Args[2:])
	case "replay":
		replay(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: bagtool {record|info|replay} [flags]")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bagtool:", err)
	os.Exit(1)
}

// record generates the synthetic drive's sensor streams into a bag.
func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	out := fs.String("out", "drive.bag", "output bag path")
	duration := fs.Duration("duration", 30*time.Second, "drive duration to record")
	_ = fs.Parse(args)

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	w, err := ros.NewBagWriter(f)
	if err != nil {
		fatal(err)
	}

	scen := world.NewScenario(world.DefaultScenarioConfig())
	lidar := sensor.NewLiDAR(sensor.DefaultLiDARConfig(), scen.City)
	camera := sensor.NewCamera(sensor.DefaultCameraConfig(), scen.City)
	gnss := sensor.NewGNSS(2.0, 0x6A55)
	imu := sensor.NewIMU(0x1407)

	write := func(topic string, stamp time.Duration, payload any) {
		if err := w.Write(ros.BagRecord{Topic: topic, Stamp: stamp, Payload: payload}); err != nil {
			fatal(err)
		}
	}
	// Free-running sensor schedules matching the live stack's defaults.
	for stamp := 7 * time.Millisecond; stamp < *duration; stamp += 100 * time.Millisecond {
		snap := scen.At(stamp.Seconds())
		write(filters.TopicPointsRaw, stamp, &msgs.PointCloud{Cloud: lidar.Scan(&snap)})
	}
	for stamp := 11 * time.Millisecond; stamp < *duration; stamp += 101 * time.Millisecond {
		snap := scen.At(stamp.Seconds())
		write(visiondet.TopicImageRaw, stamp, &msgs.CameraImage{Frame: camera.Capture(&snap)})
	}
	for stamp := 3 * time.Millisecond; stamp < *duration; stamp += time.Second {
		snap := scen.At(stamp.Seconds())
		write(localization.TopicGNSS, stamp, &msgs.GNSS{Fix: gnss.Fix(&snap)})
	}
	for stamp := 1 * time.Millisecond; stamp < *duration; stamp += 20 * time.Millisecond {
		snap := scen.At(stamp.Seconds())
		write(localization.TopicIMU, stamp, &msgs.IMU{Sample: imu.Sample(&snap)})
	}
	fmt.Printf("recorded %d messages over %v into %s\n", w.Count(), *duration, *out)
}

// info summarizes a bag's contents.
func info(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	bag := fs.String("bag", "drive.bag", "bag path")
	_ = fs.Parse(args)

	f, err := os.Open(*bag)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := summarize(f, *bag, os.Stdout); err != nil {
		fatal(err)
	}
}

// summarize decodes a bag stream and writes the info report. A damaged
// bag (corrupted or truncated mid-record) still gets its intact prefix
// summarized; the returned error then names the failing record and why
// it failed to decode.
func summarize(r io.Reader, name string, w io.Writer) error {
	br, err := ros.NewBagReader(r)
	if err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	recs, readErr := br.ReadAll()
	coverage := "none (v1 bag, no per-record checksums)"
	if br.Checksummed() {
		coverage = fmt.Sprintf("CRC32C on all %d records (format v%d)", br.Records(), br.Version())
	}
	if readErr == nil || len(recs) > 0 {
		label := name
		if readErr != nil {
			label = name + " (intact prefix of a damaged bag)"
		}
		counts := map[string]int{}
		var last time.Duration
		for _, rec := range recs {
			counts[rec.Topic]++
			if rec.Stamp > last {
				last = rec.Stamp
			}
		}
		fmt.Fprintf(w, "%s: %d messages, %.1f s\n", label, len(recs), last.Seconds())
		topics := make([]string, 0, len(counts))
		for topic := range counts {
			topics = append(topics, topic)
		}
		sort.Strings(topics)
		for _, topic := range topics {
			n := counts[topic]
			fmt.Fprintf(w, "  %-20s %6d msgs (%.1f Hz)\n", topic, n, float64(n)/last.Seconds())
		}
		fmt.Fprintf(w, "  checksum coverage: %s\n", coverage)
	}
	if readErr != nil {
		return fmt.Errorf("%s: damaged bag: %w", name, readErr)
	}
	return nil
}

// replay feeds a bag through the full stack and reports the pipeline.
func replay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	bag := fs.String("bag", "drive.bag", "bag path")
	detector := fs.String("detector", "YOLOv3-416", "vision detector")
	_ = fs.Parse(args)

	f, err := os.Open(*bag)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	r, err := ros.NewBagReader(f)
	if err != nil {
		fatal(err)
	}
	recs, err := r.ReadAll()
	if err != nil {
		fatal(err)
	}
	if len(recs) == 0 {
		fatal(fmt.Errorf("empty bag"))
	}
	end := recs[len(recs)-1].Stamp

	fmt.Println("assembling stack...")
	cfg := autoware.DefaultConfig(autoware.Detector(*detector))
	cfg.NoSensorPumps = true
	stack, err := autoware.Build(cfg)
	if err != nil {
		fatal(err)
	}
	stack.InjectBag(recs)
	stack.Run(end + time.Second)

	fmt.Printf("replayed %d messages (%.1f s of drive)\n", len(recs), end.Seconds())
	for _, n := range stack.Recorder.NodeNames() {
		s := stack.Recorder.NodeLatency(n)
		fmt.Printf("%-24s mean=%7.2fms max=%8.2fms (n=%d)\n", n, s.Mean, s.Max, s.Count)
	}
	worst, e2e := stack.Recorder.EndToEnd()
	fmt.Printf("end-to-end (%s): mean %.1f ms, max %.1f ms\n", worst, e2e.Mean, e2e.Max)
}
