package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/msgs"
	"repro/internal/ros"
)

const corpusDir = "../../internal/ros/testdata/fuzz/FuzzBagDecode"

// corpusEntry decodes one seed file in "go test fuzz v1" format back
// into the raw bag bytes it carries.
func corpusEntry(t *testing.T, name string) []byte {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join(corpusDir, name))
	if err != nil {
		t.Fatalf("reading corpus entry: %v", err)
	}
	lines := strings.SplitN(string(raw), "\n", 3)
	if len(lines) < 2 || lines[0] != "go test fuzz v1" {
		t.Fatalf("corpus entry %s is not in fuzz v1 format", name)
	}
	quoted := strings.TrimSuffix(strings.TrimPrefix(strings.TrimSpace(lines[1]), "[]byte("), ")")
	data, err := strconv.Unquote(quoted)
	if err != nil {
		t.Fatalf("unquoting corpus entry %s: %v", name, err)
	}
	return []byte(data)
}

// TestSummarizeFuzzCorpus replays the bag-decoder fuzz corpus through
// the info summary: every entry must either summarize or fail with an
// error that says what was wrong — never panic, never a bare gob error.
func TestSummarizeFuzzCorpus(t *testing.T) {
	cases := []struct {
		entry   string
		wantErr string // substring the error must carry, "" for success
	}{
		{"empty", "bag header"},
		{"garbage", "bag header"},
		// The fuzz corpus's payload type is registered only inside the
		// ros test package, so even the "valid" seed fails its first
		// payload decode here — which is exactly the shape of a bag
		// recorded by a newer tool: the error must name the record.
		{"valid", "bag record 1"},
		{"truncated", "bag record"},
		{"corrupted", "bag record"},
	}
	for _, tc := range cases {
		t.Run(tc.entry, func(t *testing.T) {
			data := corpusEntry(t, tc.entry)
			var out bytes.Buffer
			err := summarize(bytes.NewReader(data), tc.entry+".bag", &out)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("summarize: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("summarize accepted a damaged bag; output:\n%s", out.String())
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not explain the failure (want %q)", err, tc.wantErr)
			}
		})
	}
}

// writeBag builds an in-memory bag with n real sensor records.
func writeBag(t *testing.T, n int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := ros.NewBagWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		rec := ros.BagRecord{
			Topic:   "/gnss",
			Stamp:   time.Duration(i) * 100 * time.Millisecond,
			Payload: &msgs.GNSS{},
		}
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func TestSummarizeIntactBag(t *testing.T) {
	var out bytes.Buffer
	if err := summarize(bytes.NewReader(writeBag(t, 5)), "ok.bag", &out); err != nil {
		t.Fatalf("summarize: %v", err)
	}
	got := out.String()
	if !strings.Contains(got, "ok.bag: 5 messages") {
		t.Errorf("summary missing message count:\n%s", got)
	}
	if !strings.Contains(got, "/gnss") {
		t.Errorf("summary missing topic line:\n%s", got)
	}
	if !strings.Contains(got, "checksum coverage: CRC32C on all 5 records (format v2)") {
		t.Errorf("summary missing checksum coverage:\n%s", got)
	}
}

// TestSummarizeV1CoverageLine reads a legacy v1 bag (no checksums) and
// checks the coverage line says so.
func TestSummarizeV1CoverageLine(t *testing.T) {
	data := corpusEntry(t, "truncated")
	var out bytes.Buffer
	_ = summarize(bytes.NewReader(data), "old.bag", &out)
	if got := out.String(); strings.Contains(got, "messages") &&
		!strings.Contains(got, "checksum coverage: none (v1 bag") {
		t.Errorf("v1 coverage line missing:\n%s", got)
	}
}

// TestSummarizeTruncatedBagNamesRecord cuts a real bag mid-stream and
// checks the error pinpoints the failing record while the intact
// prefix is still summarized.
func TestSummarizeTruncatedBagNamesRecord(t *testing.T) {
	data := writeBag(t, 6)
	var out bytes.Buffer
	err := summarize(bytes.NewReader(data[:len(data)-7]), "cut.bag", &out)
	if err == nil {
		t.Fatal("summarize accepted a truncated bag")
	}
	if !strings.Contains(err.Error(), "damaged bag") ||
		!strings.Contains(err.Error(), "bag record 6 (5 records decoded cleanly before it)") {
		t.Errorf("error does not pinpoint the failing record: %v", err)
	}
	got := out.String()
	if !strings.Contains(got, "intact prefix") || !strings.Contains(got, "5 messages") {
		t.Errorf("intact prefix was not summarized:\n%s", got)
	}
}

// TestSummarizeCorruptedBagNamesRecord flips a byte inside a record
// body; the report must name the record where decoding went off the
// rails and still salvage everything before it.
func TestSummarizeCorruptedBagNamesRecord(t *testing.T) {
	data := writeBag(t, 4)
	data[len(data)-10] ^= 0xFF
	var out bytes.Buffer
	err := summarize(bytes.NewReader(data), "flip.bag", &out)
	if err == nil {
		t.Fatal("summarize accepted a corrupted bag")
	}
	if !strings.Contains(err.Error(), "damaged bag") ||
		!strings.Contains(err.Error(), "bag record") {
		t.Errorf("error does not name the failing record: %v", err)
	}
}
