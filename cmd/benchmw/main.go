// Command benchmw runs the middleware micro-benchmarks (bus fan-out,
// bus-edge queue push/pop) against the public transport API and writes
// BENCH_middleware.json: the measured numbers next to the pre-rewrite
// baselines recorded from the seed transport (mutex queue, one envelope
// allocation per publish). `make bench-middleware` is the canonical
// invocation; the JSON is committed so the perf trajectory of the
// transport layer is part of the repo's history.
//
// Usage:
//
//	benchmw [-out BENCH_middleware.json] [-benchtime 1s]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"
	"time"

	"repro/internal/ros"
)

// Pre-rewrite baselines, measured with -benchmem -benchtime=1s on the
// seed transport immediately before the ring/pool rewrite (same
// benchmark bodies, see internal/ros/middleware_bench_test.go). These
// are frozen history, not regenerated.
var baselines = map[string]measurement{
	"BusPublishFanout/subs=1": {NsPerOp: 85.71, BytesPerOp: 96, AllocsPerOp: 1},
	"BusPublishFanout/subs=4": {NsPerOp: 180.80, BytesPerOp: 96, AllocsPerOp: 1},
	"QueuePush/edge":          {NsPerOp: 43.02, BytesPerOp: 0, AllocsPerOp: 0},
}

type measurement struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type entry struct {
	Name string `json:"name"`
	// Before is the committed pre-rewrite baseline (mutex queue,
	// allocating publish); After is this run's measurement.
	Before  measurement `json:"before"`
	After   measurement `json:"after"`
	Speedup float64     `json:"speedup_ns"`
}

type report struct {
	Note       string  `json:"note"`
	Benchtime  string  `json:"benchtime"`
	Benchmarks []entry `json:"benchmarks"`
}

type benchPayload struct{ frame [16]float64 }

// benchFanout measures one publication fanned out to N subscribers
// whose depth-4 queues are saturated: steady-state eviction + delivery,
// the per-frame transport cost of a sensor topic under load.
func benchFanout(subs int) func(*testing.B) {
	return func(b *testing.B) {
		bus := ros.NewBus()
		for i := 0; i < subs; i++ {
			bus.Subscribe(fmt.Sprintf("node%d", i), ros.SubSpec{Topic: "/points_raw", Depth: 4})
		}
		payload := &benchPayload{}
		for i := 0; i < 8; i++ {
			bus.Publish("/points_raw", time.Duration(i), payload, nil)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			bus.Publish("/points_raw", time.Duration(i+8), payload, nil)
		}
	}
}

// benchQueuePush measures the bus-edge queue in push/pop steady state
// on the exclusive (simulator hot) path — the seed transport paid a
// mutex here on every edge.
func benchQueuePush(b *testing.B) {
	q := ros.NewExclusiveQueue(4)
	msgs := make([]*ros.Message, 8)
	for i := range msgs {
		msgs[i] = &ros.Message{Topic: "/t", Header: ros.Header{Stamp: time.Duration(i)}}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Push(msgs[i%len(msgs)])
		q.Pop()
	}
}

func main() {
	testing.Init() // registers test.benchtime before we set it
	out := flag.String("out", "BENCH_middleware.json", "output JSON path")
	benchtime := flag.Duration("benchtime", time.Second, "per-benchmark measuring time")
	flag.Parse()

	if err := flag.Set("test.benchtime", benchtime.String()); err != nil {
		fmt.Fprintln(os.Stderr, "benchmw:", err)
		os.Exit(1)
	}

	runs := []struct {
		name string
		fn   func(*testing.B)
	}{
		{"BusPublishFanout/subs=1", benchFanout(1)},
		{"BusPublishFanout/subs=4", benchFanout(4)},
		{"QueuePush/edge", benchQueuePush},
	}

	rep := report{
		Note: "middleware perf trajectory: 'before' is the frozen pre-rewrite baseline " +
			"(mutex queue, allocating publish); 'after' is the current transport",
		Benchtime: benchtime.String(),
	}
	for _, r := range runs {
		res := testing.Benchmark(r.fn)
		after := measurement{
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			BytesPerOp:  res.AllocedBytesPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
		}
		before := baselines[r.name]
		e := entry{Name: r.name, Before: before, After: after}
		if after.NsPerOp > 0 {
			e.Speedup = before.NsPerOp / after.NsPerOp
		}
		rep.Benchmarks = append(rep.Benchmarks, e)
		fmt.Printf("%-26s before %8.2f ns/op %3d B/op %d allocs/op | after %8.2f ns/op %3d B/op %d allocs/op\n",
			r.name, before.NsPerOp, before.BytesPerOp, before.AllocsPerOp,
			after.NsPerOp, after.BytesPerOp, after.AllocsPerOp)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchmw:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchmw:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", *out)
}
