package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"time"

	"repro/internal/faults"
	"repro/internal/fleet"
	"repro/internal/scenario"
)

// runSmoke exercises the full robustness surface of a real avfleet
// instance over loopback HTTP: healthy jobs and a cache hit, a
// crash-then-recover retry, a crash-always dead letter, a past-deadline
// job, and queue saturation — the service must survive all of it and
// account for every outcome in /fleetz.
func runSmoke(cfg fleet.Config) error {
	// The smoke fleet is deliberately tiny so saturation is reachable,
	// and the ladder is parked high so a full queue answers 429
	// (the ladder's own transitions are covered by the package tests).
	cfg.Workers = 2
	cfg.QueueDepth = 4
	cfg.RetryBudget = 1
	cfg.RetryBase = 10 * time.Millisecond
	cfg.AllowChaos = true
	cfg.ShedHighWater = 2
	cfg.DrainHighWater = 2

	svc, err := fleet.New(cfg)
	if err != nil {
		return err
	}
	defer svc.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	server := &http.Server{Handler: fleet.Handler(svc)}
	go server.Serve(ln)
	defer server.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("smoke fleet on %s\n", base)

	get := func(path string) (int, []byte, error) {
		resp, err := http.Get(base + path)
		if err != nil {
			return 0, nil, err
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.Bytes(), nil
	}
	submit := func(job fleet.Job, wait bool) (int, fleet.Record, error) {
		body, _ := json.Marshal(job)
		url := base + "/jobs"
		if wait {
			url += "?wait=1"
		}
		resp, err := http.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			return 0, fleet.Record{}, err
		}
		defer resp.Body.Close()
		var rec fleet.Record
		if resp.StatusCode == http.StatusAccepted {
			if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
				return resp.StatusCode, rec, err
			}
		}
		return resp.StatusCode, rec, nil
	}

	if code, _, err := get("/healthz"); err != nil || code != http.StatusOK {
		return fmt.Errorf("healthz: code %d err %v", code, err)
	}

	// A healthy tenant's job, then its byte-identical cache hit.
	code, healthy, err := submit(fleet.Job{Tenant: "alice", Priority: 1, Scenario: scenario.NameCameraStall}, true)
	if err != nil || code != http.StatusAccepted {
		return fmt.Errorf("healthy job: code %d err %v", code, err)
	}
	if healthy.State != fleet.StateDone {
		return fmt.Errorf("healthy job state %s (%s), want done", healthy.State, healthy.Err)
	}
	rcode, report, err := get(fmt.Sprintf("/jobs/%d/report", healthy.ID))
	if err != nil || rcode != http.StatusOK || !strings.Contains(string(report), scenario.NameCameraStall) {
		return fmt.Errorf("healthy report: code %d err %v (%d bytes)", rcode, err, len(report))
	}
	_, dup, err := submit(fleet.Job{Tenant: "bob", Priority: 1, Scenario: scenario.NameCameraStall}, true)
	if err != nil || !dup.CacheHit {
		return fmt.Errorf("duplicate job: cache_hit=%v err %v, want a cache hit", dup.CacheHit, err)
	}
	_, dupReport, err := get(fmt.Sprintf("/jobs/%d/report", dup.ID))
	if err != nil || !bytes.Equal(dupReport, report) {
		return fmt.Errorf("cached report diverged from the original (%d vs %d bytes)", len(dupReport), len(report))
	}

	// A transient crash on the first attempt: the retry recovers it.
	_, flaky, err := submit(fleet.Job{
		Tenant: "flaky", Priority: 1, Scenario: scenario.NameCameraStall, Seed: 5,
		Chaos: &fleet.Chaos{Kind: faults.KindCrash, Attempts: 1},
	}, true)
	if err != nil || flaky.State != fleet.StateDone || flaky.Retries != 1 {
		return fmt.Errorf("crash-once job: state %s retries %d err %v, want done after 1 retry", flaky.State, flaky.Retries, err)
	}

	// A vehicle that panics on every attempt dead-letters; the service
	// stays up.
	_, dead, err := submit(fleet.Job{
		Tenant: "mallory", Priority: 1, Scenario: scenario.NameCameraStall, Seed: 6,
		Chaos: &fleet.Chaos{Kind: faults.KindCrash, Attempts: 99},
	}, true)
	if err != nil || dead.State != fleet.StateFailed || !dead.DeadLetter {
		return fmt.Errorf("crash-always job: state %s dead_letter %v err %v, want a dead letter", dead.State, dead.DeadLetter, err)
	}

	// A job past its wall-clock deadline fails promptly and finally.
	_, late, err := submit(fleet.Job{
		Tenant: "late", Priority: 1, Scenario: scenario.NameCameraStall, Seed: 7,
		Deadline: time.Millisecond,
	}, true)
	if err != nil || late.State != fleet.StateFailed || !strings.Contains(late.Err, "deadline") {
		return fmt.Errorf("past-deadline job: state %s err %q, want a deadline failure", late.State, late.Err)
	}

	// Saturate: two stalling vehicles pin both workers, the bounded
	// queue fills, and the overflow is an explicit 429.
	for i := 0; i < 2; i++ {
		code, _, err := submit(fleet.Job{
			Tenant: "burst", Priority: 1, Scenario: scenario.NameCameraStall, Seed: uint64(100 + i),
			Deadline: time.Second, Chaos: &fleet.Chaos{Kind: faults.KindStall, Attempts: 99},
		}, false)
		if err != nil || code != http.StatusAccepted {
			return fmt.Errorf("stall blocker %d: code %d err %v", i, code, err)
		}
	}
	saw429 := false
	for i := 0; i < 8; i++ {
		code, _, err := submit(fleet.Job{
			Tenant: "burst", Priority: 1, Scenario: scenario.NameCameraStall, Seed: uint64(200 + i),
			Deadline: time.Second, Chaos: &fleet.Chaos{Kind: faults.KindCrash, Attempts: 99},
		}, false)
		if err != nil {
			return fmt.Errorf("burst job %d: %v", i, err)
		}
		if code == http.StatusTooManyRequests {
			saw429 = true
			break
		}
		if code != http.StatusAccepted {
			return fmt.Errorf("burst job %d: unexpected code %d", i, code)
		}
	}
	if !saw429 {
		return fmt.Errorf("saturating the queue never produced a 429")
	}

	// Let the burst drain, then check the books.
	time.Sleep(1500 * time.Millisecond)
	code, fleetz, err := get("/fleetz")
	if err != nil || code != http.StatusOK {
		return fmt.Errorf("fleetz: code %d err %v", code, err)
	}
	var st fleet.Status
	if err := json.Unmarshal(fleetz, &st); err != nil {
		return fmt.Errorf("fleetz decode: %v", err)
	}
	switch {
	case st.Fleet.Completed < 3:
		return fmt.Errorf("fleetz: completed %d, want >= 3 (healthy, cache hit, recovered)", st.Fleet.Completed)
	case st.Fleet.Rejected < 1:
		return fmt.Errorf("fleetz: rejected %d, want >= 1 (saturation)", st.Fleet.Rejected)
	case len(st.DeadLetters) < 1:
		return fmt.Errorf("fleetz: no dead letters, want mallory's job")
	case st.PoolPanics < 2:
		return fmt.Errorf("fleetz: %d captured panics, want >= 2", st.PoolPanics)
	case st.Fleet.CacheHits < 1:
		return fmt.Errorf("fleetz: %d cache hits, want >= 1", st.Fleet.CacheHits)
	}
	fmt.Printf("fleet: %d completed, %d failed, %d retries, %d rejected, %d dead letters, %d panics captured, state %s\n",
		st.Fleet.Completed, st.Fleet.Failed, st.Fleet.Retries, st.Fleet.Rejected,
		len(st.DeadLetters), st.PoolPanics, st.State)
	return nil
}
