// Command avfleet serves vehicle simulations as a fleet: a long-running
// HTTP service that accepts jobs keyed by (scenario, seed, world
// params, config), runs each as an isolated virtual-time vehicle on the
// shared worker pool, and aggregates per-tenant results.
//
// Usage:
//
//	avfleet [-addr :8373] [-workers N] [-queue 64] [-detector SSD300]
//	        [-duration 8s] [-retries 2] [-retry-base 50ms] [-retry-seed 1]
//	        [-attempt-timeout 0] [-target-p99 0] [-cache 256] [-chaos]
//	        [-smoke]
//
// Endpoints:
//
//	POST /jobs            submit a job; ?wait=1 blocks for the result
//	GET  /jobs/{id}       job record
//	GET  /jobs/{id}/report  final side-by-side report
//	GET  /fleetz          ladder state, queue, per-tenant p50/p99,
//	                      retries/sheds/rejections, dead letters
//	GET  /healthz         liveness
//
// Overload is explicit, never silent: a full admission queue answers
// 429, the shedding ladder rejects best-effort tenants with 429, and
// the draining state answers 503 until the backlog clears. Identical
// job keys are served from the result cache byte-identically.
//
// -chaos enables per-job fault injection (crash/stall attempts) for
// harness use; leave it off in real deployments. -smoke starts the
// service on a loopback port, drives the full robustness surface over
// real HTTP — healthy jobs, a cache hit, a crash-then-recover retry, a
// crash-always dead letter, a past-deadline job, queue saturation —
// and exits non-zero if any contract is violated.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"repro/internal/autoware"
	"repro/internal/fleet"
)

func main() {
	addr := flag.String("addr", ":8373", "listen address")
	workers := flag.Int("workers", 0, "max concurrently simulating vehicles (0 = NumCPU)")
	queue := flag.Int("queue", 64, "admission queue depth (overflow answers 429)")
	detector := flag.String("detector", string(autoware.DetectorSSD300), "vision detector (SSD300, SSD512, YOLOv3-416)")
	duration := flag.Duration("duration", 8*time.Second, "default virtual drive length per job")
	retries := flag.Int("retries", 2, "retry budget for transient (crash/timeout) failures")
	retryBase := flag.Duration("retry-base", 50*time.Millisecond, "first backoff delay (doubles per retry, seeded jitter)")
	retrySeed := flag.Uint64("retry-seed", 1, "seed for the deterministic backoff jitter")
	attemptTimeout := flag.Duration("attempt-timeout", 0, "wall-clock bound per attempt (0 = job deadline only)")
	targetP99 := flag.Duration("target-p99", 0, "healthy completion p99; sustained drift past it sheds load (0 = off)")
	cache := flag.Int("cache", 256, "result cache entries (negative disables)")
	chaos := flag.Bool("chaos", false, "allow per-job chaos injection (crash/stall attempts)")
	smoke := flag.Bool("smoke", false, "run the self-test against a loopback instance and exit")
	flag.Parse()

	cfg := fleet.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		Detector:       autoware.Detector(*detector),
		Duration:       *duration,
		RetryBudget:    *retries,
		RetryBase:      *retryBase,
		RetrySeed:      *retrySeed,
		AttemptTimeout: *attemptTimeout,
		TargetP99:      *targetP99,
		CacheSize:      *cache,
		AllowChaos:     *chaos,
	}

	if *smoke {
		if err := runSmoke(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "avfleet smoke: FAIL: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("avfleet smoke: ok")
		return
	}

	svc := fleet.New(cfg)
	defer svc.Close()
	log.Printf("avfleet: serving on %s (workers=%d queue=%d detector=%s)",
		*addr, cfg.Workers, cfg.QueueDepth, cfg.Detector)
	log.Fatal(http.ListenAndServe(*addr, fleet.Handler(svc)))
}
