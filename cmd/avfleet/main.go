// Command avfleet serves vehicle simulations as a fleet: a long-running
// HTTP service that accepts jobs keyed by (scenario, seed, world
// params, config), runs each as an isolated virtual-time vehicle on the
// shared worker pool, and aggregates per-tenant results.
//
// Usage:
//
//	avfleet [-addr :8373] [-workers N] [-queue 64] [-detector SSD300]
//	        [-duration 8s] [-retries 2] [-retry-base 50ms] [-retry-seed 1]
//	        [-attempt-timeout 0] [-target-p99 0] [-cache 256] [-chaos]
//	        [-journal DIR] [-snapshot-every 512] [-admission fair]
//	        [-tenant-rate 0] [-tenant-burst 8] [-tenant-limit name=rate:burst:weight]...
//	        [-smoke] [-journal-smoke]
//
// Endpoints:
//
//	POST /jobs            submit a job; ?wait=1 blocks for the result
//	GET  /jobs            list jobs; ?state=queued|running|done|failed|shed|dead
//	GET  /jobs/{id}       job record
//	GET  /jobs/{id}/report  final side-by-side report
//	POST /tenants/{tenant}/limit  install a tenant rate/burst/weight contract
//	GET  /fleetz          ladder state, queue, per-tenant p50/p99,
//	                      retries/sheds/rejections, limits, journal
//	                      stats, dead letters
//	GET  /healthz         liveness
//
// Overload is explicit, never silent: a full admission queue answers
// 429, the shedding ladder rejects best-effort tenants with 429, a
// tenant past its rate limit gets a 429 with a Retry-After hint, and
// the draining state answers 503 until the backlog clears. Identical
// job keys are served from the result cache byte-identically.
//
// -journal DIR makes the fleet durable: every admission and terminal
// transition is fsynced to a CRC-framed write-ahead log before it is
// acknowledged, and a restarted avfleet pointed at the same directory
// replays the log — completed reports byte-identical, interrupted jobs
// re-queued with their retry schedules intact. -snapshot-every bounds
// the log via periodic snapshot compaction.
//
// -chaos enables per-job fault injection (crash/stall attempts) for
// harness use; leave it off in real deployments. -smoke starts the
// service on a loopback port, drives the full robustness surface over
// real HTTP — healthy jobs, a cache hit, a crash-then-recover retry, a
// crash-always dead letter, a past-deadline job, queue saturation —
// and exits non-zero if any contract is violated. -journal-smoke runs
// the kill -9 restart-recovery self-test: it spawns a journaled child
// avfleet, loads it, SIGKILLs it mid-flight, restarts it against the
// same journal, and verifies nothing admitted was lost and completed
// reports survived byte-identically.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/autoware"
	"repro/internal/fleet"
)

// tenantLimitFlags collects repeated -tenant-limit name=rate:burst:weight
// values (burst and weight optional).
type tenantLimitFlags map[string]fleet.TenantLimit

func (f tenantLimitFlags) String() string { return fmt.Sprintf("%d limits", len(f)) }

func (f tenantLimitFlags) Set(v string) error {
	name, spec, ok := strings.Cut(v, "=")
	if !ok || name == "" {
		return fmt.Errorf("want name=rate[:burst[:weight]], got %q", v)
	}
	parts := strings.Split(spec, ":")
	if len(parts) > 3 {
		return fmt.Errorf("want name=rate[:burst[:weight]], got %q", v)
	}
	var limit fleet.TenantLimit
	var err error
	if limit.Rate, err = strconv.ParseFloat(parts[0], 64); err != nil {
		return fmt.Errorf("rate in %q: %v", v, err)
	}
	if len(parts) > 1 {
		if limit.Burst, err = strconv.Atoi(parts[1]); err != nil {
			return fmt.Errorf("burst in %q: %v", v, err)
		}
	}
	if len(parts) > 2 {
		if limit.Weight, err = strconv.Atoi(parts[2]); err != nil {
			return fmt.Errorf("weight in %q: %v", v, err)
		}
	}
	f[name] = limit
	return nil
}

func main() {
	addr := flag.String("addr", ":8373", "listen address")
	workers := flag.Int("workers", 0, "max concurrently simulating vehicles (0 = NumCPU)")
	queue := flag.Int("queue", 64, "admission queue depth (overflow answers 429)")
	detector := flag.String("detector", string(autoware.DetectorSSD300), "vision detector (SSD300, SSD512, YOLOv3-416)")
	duration := flag.Duration("duration", 8*time.Second, "default virtual drive length per job")
	retries := flag.Int("retries", 2, "retry budget for transient (crash/timeout) failures")
	retryBase := flag.Duration("retry-base", 50*time.Millisecond, "first backoff delay (doubles per retry, seeded jitter)")
	retrySeed := flag.Uint64("retry-seed", 1, "seed for the deterministic backoff jitter")
	attemptTimeout := flag.Duration("attempt-timeout", 0, "wall-clock bound per attempt (0 = job deadline only)")
	targetP99 := flag.Duration("target-p99", 0, "healthy completion p99; sustained drift past it sheds load (0 = off)")
	cache := flag.Int("cache", 256, "result cache entries (negative disables)")
	chaos := flag.Bool("chaos", false, "allow per-job chaos injection (crash/stall attempts)")
	journalDir := flag.String("journal", "", "write-ahead log directory for crash-safe restarts (empty = in-memory only)")
	snapshotEvery := flag.Int("snapshot-every", 512, "WAL entries between snapshot compactions (negative disables)")
	admission := flag.String("admission", fleet.AdmissionFair, "admission discipline: fair (per-tenant round-robin) or priority (global heap)")
	tenantRate := flag.Float64("tenant-rate", 0, "default per-tenant admission rate in jobs/sec (0 = unlimited)")
	tenantBurst := flag.Int("tenant-burst", 8, "default per-tenant token-bucket burst")
	limits := tenantLimitFlags{}
	flag.Var(limits, "tenant-limit", "per-tenant limit name=rate[:burst[:weight]] (repeatable)")
	smoke := flag.Bool("smoke", false, "run the self-test against a loopback instance and exit")
	journalSmoke := flag.Bool("journal-smoke", false, "run the kill -9 restart-recovery self-test and exit")
	flag.Parse()

	cfg := fleet.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		Detector:       autoware.Detector(*detector),
		Duration:       *duration,
		RetryBudget:    *retries,
		RetryBase:      *retryBase,
		RetrySeed:      *retrySeed,
		AttemptTimeout: *attemptTimeout,
		TargetP99:      *targetP99,
		CacheSize:      *cache,
		AllowChaos:     *chaos,
		Journal:        *journalDir,
		SnapshotEvery:  *snapshotEvery,
		Admission:      *admission,
		TenantRate:     *tenantRate,
		TenantBurst:    *tenantBurst,
		Limits:         limits,
	}

	if *smoke {
		if err := runSmoke(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "avfleet smoke: FAIL: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("avfleet smoke: ok")
		return
	}
	if *journalSmoke {
		if err := runJournalSmoke(); err != nil {
			fmt.Fprintf(os.Stderr, "avfleet journal-smoke: FAIL: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("avfleet journal-smoke: ok")
		return
	}

	svc, err := fleet.New(cfg)
	if err != nil {
		log.Fatalf("avfleet: %v", err)
	}
	defer svc.Close()
	if cfg.Journal != "" {
		log.Printf("avfleet: journal %s (snapshot every %d entries)", cfg.Journal, cfg.SnapshotEvery)
	}
	log.Printf("avfleet: serving on %s (workers=%d queue=%d detector=%s admission=%s)",
		*addr, cfg.Workers, cfg.QueueDepth, cfg.Detector, cfg.Admission)
	log.Fatal(http.ListenAndServe(*addr, fleet.Handler(svc)))
}
