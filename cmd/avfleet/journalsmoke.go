package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"time"

	"repro/internal/faults"
	"repro/internal/fleet"
	"repro/internal/scenario"
)

// runJournalSmoke is the headline durability self-test, run against a
// real process the way a crash happens in production:
//
//  1. spawn a journaled child avfleet and complete a few jobs
//  2. pin its workers with stalling chaos jobs and queue more work
//  3. kill -9 the child mid-flight
//  4. restart a fresh child against the same journal
//  5. verify: completed reports are byte-identical, every admitted job
//     is still accounted for, queued work resumes to completion, the
//     stalled jobs dead-letter deterministically, and the result cache
//     survived (a resubmitted key is a cache hit with the same bytes)
func runJournalSmoke() error {
	dir, err := os.MkdirTemp("", "avfleet-journal-smoke-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// Reserve a port for both child incarnations.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	addr := ln.Addr().String()
	ln.Close()
	base := "http://" + addr

	self, err := os.Executable()
	if err != nil {
		return err
	}
	spawn := func() (*exec.Cmd, error) {
		cmd := exec.Command(self,
			"-addr", addr, "-journal", dir, "-snapshot-every", "4",
			// Attempt timeout: generously above one real job's wall time
			// (so healthy jobs never trip it) while keeping the stalled
			// jobs' road to their dead letter — 2 attempts — bounded.
			"-workers", "2", "-queue", "16",
			"-retries", "1", "-retry-base", "10ms", "-attempt-timeout", "15s",
			"-chaos",
		)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return nil, err
		}
		deadline := time.Now().Add(15 * time.Second)
		for {
			resp, err := http.Get(base + "/healthz")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					return cmd, nil
				}
			}
			if time.Now().After(deadline) {
				cmd.Process.Kill()
				return nil, fmt.Errorf("child on %s never became healthy", addr)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}

	submit := func(job fleet.Job, wait bool) (fleet.Record, error) {
		body, _ := json.Marshal(job)
		url := base + "/jobs"
		if wait {
			url += "?wait=1"
		}
		resp, err := http.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			return fleet.Record{}, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body)
			return fleet.Record{}, fmt.Errorf("submit: code %d: %s", resp.StatusCode, buf.String())
		}
		var rec fleet.Record
		return rec, json.NewDecoder(resp.Body).Decode(&rec)
	}
	getBody := func(path string) (int, []byte, error) {
		resp, err := http.Get(base + path)
		if err != nil {
			return 0, nil, err
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.Bytes(), nil
	}
	waitTerminal := func(id int64) (fleet.Record, error) {
		deadline := time.Now().Add(60 * time.Second)
		for {
			_, body, err := getBody(fmt.Sprintf("/jobs/%d", id))
			if err != nil {
				return fleet.Record{}, err
			}
			var rec fleet.Record
			if err := json.Unmarshal(body, &rec); err != nil {
				return fleet.Record{}, fmt.Errorf("job %d: %v", id, err)
			}
			switch rec.State {
			case fleet.StateDone, fleet.StateFailed, fleet.StateShed:
				return rec, nil
			}
			if time.Now().After(deadline) {
				return rec, fmt.Errorf("job %d stuck in %s", id, rec.State)
			}
			time.Sleep(100 * time.Millisecond)
		}
	}

	child, err := spawn()
	if err != nil {
		return err
	}
	defer child.Process.Kill()

	// Phase 1: complete three jobs and keep their reports.
	reports := map[int64][]byte{}
	for seed := uint64(1); seed <= 3; seed++ {
		rec, err := submit(fleet.Job{Tenant: "alice", Scenario: scenario.NameCameraStall, Seed: seed}, true)
		if err != nil {
			return fmt.Errorf("phase-1 seed %d: %v", seed, err)
		}
		if rec.State != fleet.StateDone {
			return fmt.Errorf("phase-1 seed %d: state %s (%s)", seed, rec.State, rec.Err)
		}
		code, report, err := getBody(fmt.Sprintf("/jobs/%d/report", rec.ID))
		if err != nil || code != http.StatusOK {
			return fmt.Errorf("phase-1 report %d: code %d err %v", rec.ID, code, err)
		}
		reports[rec.ID] = report
	}

	// Phase 2: pin both workers with always-stalling jobs, queue more
	// normal work behind them, then kill -9 mid-flight.
	var stalled, queued []int64
	for seed := uint64(10); seed <= 11; seed++ {
		rec, err := submit(fleet.Job{
			Tenant: "mallory", Scenario: scenario.NameCameraStall, Seed: seed,
			Chaos: &fleet.Chaos{Kind: faults.KindStall, Attempts: 99},
		}, false)
		if err != nil {
			return fmt.Errorf("stall job seed %d: %v", seed, err)
		}
		stalled = append(stalled, rec.ID)
	}
	for seed := uint64(20); seed <= 23; seed++ {
		rec, err := submit(fleet.Job{Tenant: "bob", Scenario: scenario.NameCameraStall, Seed: seed}, false)
		if err != nil {
			return fmt.Errorf("queued job seed %d: %v", seed, err)
		}
		queued = append(queued, rec.ID)
	}
	admitted := int64(len(reports) + len(stalled) + len(queued))

	if err := child.Process.Kill(); err != nil { // SIGKILL: no shutdown path runs
		return err
	}
	child.Wait()
	fmt.Printf("killed child mid-flight with %d jobs admitted\n", admitted)

	// Restart against the same journal.
	child, err = spawn()
	if err != nil {
		return fmt.Errorf("restarting: %v", err)
	}
	defer child.Process.Kill()

	// Completed reports survived byte-identically.
	for id, want := range reports {
		code, got, err := getBody(fmt.Sprintf("/jobs/%d/report", id))
		if err != nil || code != http.StatusOK {
			return fmt.Errorf("recovered report %d: code %d err %v", id, code, err)
		}
		if !bytes.Equal(got, want) {
			return fmt.Errorf("recovered report %d differs (%d vs %d bytes)", id, len(got), len(want))
		}
	}

	// No admitted job was lost.
	code, body, err := getBody("/jobs")
	if err != nil || code != http.StatusOK {
		return fmt.Errorf("jobs list: code %d err %v", code, err)
	}
	var all []fleet.Record
	if err := json.Unmarshal(body, &all); err != nil {
		return err
	}
	if int64(len(all)) != admitted {
		return fmt.Errorf("recovered %d job records, want %d", len(all), admitted)
	}

	// Queued work resumes to completion; the pinned stall jobs burn
	// their retry budget and dead-letter deterministically.
	for _, id := range queued {
		rec, err := waitTerminal(id)
		if err != nil {
			return err
		}
		if rec.State != fleet.StateDone {
			return fmt.Errorf("resumed job %d: state %s (%s), want done", id, rec.State, rec.Err)
		}
		if !rec.Resumed {
			return fmt.Errorf("resumed job %d not marked resumed", id)
		}
	}
	for _, id := range stalled {
		rec, err := waitTerminal(id)
		if err != nil {
			return err
		}
		if rec.State != fleet.StateFailed || !rec.DeadLetter {
			return fmt.Errorf("stall job %d: state %s dead_letter %v, want a dead letter", id, rec.State, rec.DeadLetter)
		}
	}
	code, body, err = getBody("/jobs?state=dead")
	if err != nil || code != http.StatusOK {
		return fmt.Errorf("dead filter: code %d err %v", code, err)
	}
	var dead []fleet.Record
	if err := json.Unmarshal(body, &dead); err != nil {
		return err
	}
	if len(dead) < len(stalled) {
		return fmt.Errorf("dead filter lists %d jobs, want >= %d", len(dead), len(stalled))
	}

	// The result cache survived: a phase-1 key resubmitted is a cache
	// hit with the same bytes.
	again, err := submit(fleet.Job{Tenant: "carol", Scenario: scenario.NameCameraStall, Seed: 1}, true)
	if err != nil {
		return fmt.Errorf("resubmitting a recovered key: %v", err)
	}
	if !again.CacheHit {
		return fmt.Errorf("resubmitted key was not a cache hit")
	}

	// The fleet reports its recovery.
	code, body, err = getBody("/fleetz")
	if err != nil || code != http.StatusOK {
		return fmt.Errorf("fleetz: code %d err %v", code, err)
	}
	var st fleet.Status
	if err := json.Unmarshal(body, &st); err != nil {
		return err
	}
	if st.Journal == nil {
		return fmt.Errorf("fleetz reports no journal on a journaled fleet")
	}
	if st.Journal.Recovered.Queued < 1 {
		return fmt.Errorf("fleetz recovered.queued = %d, want >= 1", st.Journal.Recovered.Queued)
	}
	fmt.Printf("recovered: %d queued, %d done, %d dead (salvage: %q)\n",
		st.Journal.Recovered.Queued, st.Journal.Recovered.Done,
		st.Journal.Recovered.Dead, st.Journal.Recovered.Salvage)
	return nil
}
