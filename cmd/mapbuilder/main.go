// Command mapbuilder runs the ndt_mapping-equivalent sweep: it drives
// the mapping rig along the scenario's route, accumulates the
// point-cloud map, and saves it for reuse — the step the paper performed
// with Autoware's ndt_mapping utility before characterization.
//
// Usage:
//
//	mapbuilder build -out city.avmap [-spacing 5]
//	mapbuilder info  -map city.avmap
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/hdmap"
	"repro/internal/world"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "build":
		build(os.Args[2:])
	case "info":
		info(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: mapbuilder {build|info} [flags]")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mapbuilder:", err)
	os.Exit(1)
}

func build(args []string) {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	out := fs.String("out", "city.avmap", "output map path")
	spacing := fs.Float64("spacing", 5, "distance between mapping scans, meters")
	_ = fs.Parse(args)

	scen := world.NewScenario(world.DefaultScenarioConfig())
	cfg := hdmap.DefaultConfig()
	cfg.ScanSpacing = *spacing

	fmt.Printf("sweeping the mapping rig along the route (spacing %.1f m)...\n", *spacing)
	start := time.Now()
	m, err := hdmap.Build(scen, cfg)
	if err != nil {
		fatal(err)
	}
	if err := m.SaveFile(*out); err != nil {
		fatal(err)
	}
	st, err := os.Stat(*out)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("built in %.1fs: %d scans, %d map points, %d NDT voxels -> %s (%.1f MB)\n",
		time.Since(start).Seconds(), m.Scans, m.Cloud.Len(), usableVoxels(m), *out,
		float64(st.Size())/1e6)
}

func info(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	path := fs.String("map", "city.avmap", "map path")
	_ = fs.Parse(args)

	m, err := hdmap.LoadFile(*path)
	if err != nil {
		fatal(err)
	}
	scen := world.NewScenario(world.DefaultScenarioConfig())
	b := m.Cloud.Bounds()
	fmt.Printf("%s:\n", *path)
	fmt.Printf("  scans          %d\n", m.Scans)
	fmt.Printf("  map points     %d\n", m.Cloud.Len())
	fmt.Printf("  NDT leaf       %.1f m (%d voxels, %d usable)\n", m.NDTLeaf, len(m.NDT), usableVoxels(m))
	fmt.Printf("  extent         %.0f x %.0f m\n", b.Size().X, b.Size().Y)
	fmt.Printf("  route coverage %.0f%%\n", 100*m.Coverage(scen, 100))
}

func usableVoxels(m *hdmap.Map) int {
	n := 0
	for _, vs := range m.NDT {
		if vs.OK {
			n++
		}
	}
	return n
}
