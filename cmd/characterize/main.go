// Command characterize regenerates the paper's evaluation: every table
// and figure (Figs. 5-8, Tables III, V, VI, VII), plus the findings
// checklist, from deterministic full-system runs.
//
// Usage:
//
//	characterize [-exp all|fig5|tab3|fig6|tab5|tab6|tab7|fig7|fig8]
//	             [-duration 60s] [-out report.txt] [-workers N]
//	             [-faults <scenario>] [-supervise] [-shed 100ms] [-guard]
//
// -guard attaches the input-integrity layer (internal/guard) to every
// run. For the paper tables the input is clean, so the guarded report
// is byte-identical to the unguarded one — the flag is the regression
// hook that proves the guard is free on clean streams. With -faults it
// forces the guard onto the scenario's faulted run.
//
// -workers bounds how many experiment configurations simulate
// concurrently (default: the number of CPUs). Every configuration is an
// isolated virtual-time simulation, so the report is byte-identical for
// any worker count; only wall-clock time changes.
//
// -faults switches to the chaos characterization: instead of the paper
// tables, it runs the named fault scenario (baseline vs faulted over
// the same drive) and writes the side-by-side latency/drop/degradation
// report. Same seed + schedule ⇒ byte-identical report.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/autoware"
	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/scenario"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: all, findings, or one of "+strings.Join(core.ExperimentNames(), ", "))
	duration := flag.Duration("duration", 60*time.Second, "virtual drive duration per configuration")
	out := flag.String("out", "", "write the report to this file instead of stdout")
	csvDir := flag.String("csv", "", "also export raw per-sample data as CSV files into this directory")
	workers := flag.Int("workers", runtime.NumCPU(), "max concurrent experiment configurations (results are identical for any value)")
	faultsFlag := flag.String("faults", "", "run a chaos scenario instead of the paper tables: "+strings.Join(scenario.Names(), ", "))
	detector := flag.String("detector", "YOLOv3-416", "detector configuration for the chaos scenario (-faults only)")
	supervise := flag.Bool("supervise", false, "force the supervision layer onto the chaos scenario's faulted run (-faults only)")
	shed := flag.Duration("shed", 0, "force this deadline-shedding budget onto the chaos scenario's faulted run (-faults only)")
	guard := flag.Bool("guard", false, "attach the input-integrity guard (no-op on the clean paper tables; forces the guard onto a -faults run)")
	flag.Parse()
	parallel.SetMaxWorkers(*workers)

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}

	if *faultsFlag != "" {
		spec, err := scenario.ByName(*faultsFlag)
		if err != nil {
			fatal(err)
		}
		if *supervise {
			spec.Supervise = true
		}
		if *shed > 0 {
			spec.ShedBudget = *shed
		}
		if *guard {
			spec.Guard = true
		}
		if min := spec.MinDuration(); *duration < min {
			fatal(fmt.Errorf("scenario %s needs -duration >= %v", spec.Name, min))
		}
		fmt.Fprintf(os.Stderr, "building environment (scenario + HD map)...\n")
		start := time.Now()
		res, err := scenario.Run(spec, autoware.Detector(*detector), *duration)
		if err != nil {
			fatal(err)
		}
		res.WriteReport(w)
		fmt.Fprintf(os.Stderr, "done in %.1fs\n", time.Since(start).Seconds())
		return
	}

	fmt.Fprintf(os.Stderr, "building environment (scenario + HD map)...\n")
	start := time.Now()
	c, err := core.NewCharacterizer(*duration)
	if err != nil {
		fatal(err)
	}
	c.SetWorkers(*workers)
	c.SetGuard(*guard)
	fmt.Fprintf(os.Stderr, "environment ready in %.1fs; simulating %v per configuration (%d workers)\n",
		time.Since(start).Seconds(), *duration, *workers)

	if *exp == "all" {
		if err := c.RunAll(w); err != nil {
			fatal(err)
		}
		findings, err := c.Findings()
		if err != nil {
			fatal(err)
		}
		fmt.Fprintln(w, "\n=== Findings ===")
		for _, f := range findings {
			fmt.Fprintln(w, f)
		}
	} else if *exp == "findings" {
		findings, err := c.Findings()
		if err != nil {
			fatal(err)
		}
		for _, f := range findings {
			fmt.Fprintln(w, f)
		}
	} else {
		if err := c.RunExperiment(w, *exp); err != nil {
			fatal(err)
		}
	}
	if *csvDir != "" {
		if err := c.WriteCSV(*csvDir); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "raw data exported to %s\n", *csvDir)
	}
	fmt.Fprintf(os.Stderr, "done in %.1fs\n", time.Since(start).Seconds())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "characterize:", err)
	os.Exit(1)
}
