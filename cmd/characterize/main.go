// Command characterize regenerates the paper's evaluation: every table
// and figure (Figs. 5-8, Tables III, V, VI, VII), plus the findings
// checklist, from deterministic full-system runs.
//
// Usage:
//
//	characterize [-exp all|fig5|tab3|fig6|tab5|tab6|tab7|fig7|fig8|tune|search]
//	             [-duration 60s] [-out report.txt] [-workers N]
//	             [-faults <scenario>] [-supervise] [-shed 100ms] [-guard]
//	             [-sched] [-seed 1] [-bench BENCH_sched.json]
//	             [-budget 12] [-space default|compact]
//
// -exp tune runs the scheduler auto-tuner instead of the paper tables:
// a clean profiling drive measures per-node criticality from lineage
// chains, then every seeded candidate schedule replays the chaos
// scenario named by -faults (default: contention) and the one with the
// lowest worst-path p99 wins. The full search is serialized to -bench
// as BENCH_sched.json; candidate 0 is always the no-scheduler baseline,
// so the winner is never worse than not scheduling. -seed drives the
// candidate search; the whole procedure is deterministic.
//
// -sched forces the pinned contention-tuned schedule onto a -faults
// run (criticality profiled on the run's own baseline leg).
//
// -exp search runs the adversarial latency search: -budget seeded
// candidates — procedurally generated worlds (internal/world.Generate)
// plus sampled fault schedules — are evaluated against the scripted
// baseline drive, and the feasible candidate with the HIGHEST
// worst-path p99 wins. It is the tuner's mirror image: tune minimizes
// the tail, search hunts latency-budget violations to pin as
// regression scenarios. -space picks the sampling space, -seed drives
// every decision, and the full search is serialized to -bench (default
// BENCH_search.json here). Same seed ⇒ byte-identical report and the
// same elected worst case.
//
// -guard attaches the input-integrity layer (internal/guard) to every
// run. For the paper tables the input is clean, so the guarded report
// is byte-identical to the unguarded one — the flag is the regression
// hook that proves the guard is free on clean streams. With -faults it
// forces the guard onto the scenario's faulted run.
//
// -workers bounds how many experiment configurations simulate
// concurrently (default: the number of CPUs). Every configuration is an
// isolated virtual-time simulation, so the report is byte-identical for
// any worker count; only wall-clock time changes.
//
// -faults switches to the chaos characterization: instead of the paper
// tables, it runs the named fault scenario (baseline vs faulted over
// the same drive) and writes the side-by-side latency/drop/degradation
// report. Same seed + schedule ⇒ byte-identical report.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/autoware"
	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/scenario"
	"repro/internal/search"
	"repro/internal/world"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: all, findings, or one of "+strings.Join(core.ExperimentNames(), ", "))
	duration := flag.Duration("duration", 60*time.Second, "virtual drive duration per configuration")
	out := flag.String("out", "", "write the report to this file instead of stdout")
	csvDir := flag.String("csv", "", "also export raw per-sample data as CSV files into this directory")
	workers := flag.Int("workers", runtime.NumCPU(), "max concurrent experiment configurations (results are identical for any value)")
	faultsFlag := flag.String("faults", "", "run a chaos scenario instead of the paper tables: "+strings.Join(scenario.Names(), ", "))
	detector := flag.String("detector", "YOLOv3-416", "detector configuration for the chaos scenario (-faults) and the adversarial search (-exp search)")
	supervise := flag.Bool("supervise", false, "force the supervision layer onto the chaos scenario's faulted run (-faults only)")
	shed := flag.Duration("shed", 0, "force this deadline-shedding budget onto the chaos scenario's faulted run (-faults only)")
	guard := flag.Bool("guard", false, "attach the input-integrity guard (no-op on the clean paper tables; forces the guard onto a -faults run)")
	schedFlag := flag.Bool("sched", false, "force the pinned contention-tuned schedule onto the chaos scenario's faulted run (-faults only)")
	seed := flag.Uint64("seed", 1, "candidate-search seed for -exp tune and -exp search")
	bench := flag.String("bench", "", "write the -exp tune/search results to this JSON file (default BENCH_sched.json / BENCH_search.json)")
	budget := flag.Int("budget", 12, "evaluated candidates for -exp search, including the scripted baseline")
	space := flag.String("space", "default", "sampling space for -exp search: default or compact")
	flag.Parse()
	parallel.SetMaxWorkers(*workers)

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}

	if *exp == "tune" {
		name := *faultsFlag
		if name == "" {
			name = scenario.NameContention
		}
		spec, err := scenario.ByName(name)
		if err != nil {
			fatal(err)
		}
		if min := spec.MinDuration(); *duration < min {
			fatal(fmt.Errorf("scenario %s needs -duration >= %v", spec.Name, min))
		}
		fmt.Fprintf(os.Stderr, "building environment (scenario + HD map)...\n")
		start := time.Now()
		rep, err := scenario.Tune(spec, autoware.Detector(*detector), *duration, *seed)
		if err != nil {
			fatal(err)
		}
		writeTuneReport(w, rep)
		writeBench(orDefault(*bench, "BENCH_sched.json"), rep)
		// Tune's contract: candidate 0 is the no-scheduler baseline and
		// is always feasible, so the winner can never be worse. Treat a
		// violation as the bug it would be (sched-smoke relies on this).
		if rep.Best.P99 > rep.Baseline.P99 {
			fatal(fmt.Errorf("tuned p99 %.2f ms worse than baseline %.2f ms", rep.Best.P99, rep.Baseline.P99))
		}
		fmt.Fprintf(os.Stderr, "done in %.1fs\n", time.Since(start).Seconds())
		return
	}

	if *exp == "search" {
		var sp world.ParamSpace
		switch *space {
		case "default":
			sp = world.DefaultSpace()
		case "compact":
			sp = world.CompactSpace()
		default:
			fatal(fmt.Errorf("unknown -space %q (have default, compact)", *space))
		}
		fmt.Fprintf(os.Stderr, "searching %d candidates (%s space, seed %d, %v per eval)...\n",
			*budget, *space, *seed, *duration)
		start := time.Now()
		rep, err := search.Run(search.Config{
			Space:     sp,
			SpaceName: *space,
			Seed:      *seed,
			Budget:    *budget,
			Duration:  *duration,
			Detector:  autoware.Detector(*detector),
		})
		if err != nil {
			fatal(err)
		}
		writeSearchReport(w, rep)
		writeBench(orDefault(*bench, "BENCH_search.json"), rep)
		// Search's contract, mirroring tune's: the scripted baseline is
		// always feasible, so the elected worst case can never be better
		// (lower-p99) than it. search-smoke relies on this.
		if rep.Worst.P99 < rep.Baseline.P99 {
			fatal(fmt.Errorf("worst p99 %.2f ms below baseline %.2f ms", rep.Worst.P99, rep.Baseline.P99))
		}
		fmt.Fprintf(os.Stderr, "done in %.1fs\n", time.Since(start).Seconds())
		return
	}

	if *faultsFlag != "" {
		spec, err := scenario.ByName(*faultsFlag)
		if err != nil {
			fatal(err)
		}
		if *schedFlag {
			k := scenario.ContentionTunedKnobs()
			spec.Sched = &k
		}
		if *supervise {
			spec.Supervise = true
		}
		if *shed > 0 {
			spec.ShedBudget = *shed
		}
		if *guard {
			spec.Guard = true
		}
		if min := spec.MinDuration(); *duration < min {
			fatal(fmt.Errorf("scenario %s needs -duration >= %v", spec.Name, min))
		}
		fmt.Fprintf(os.Stderr, "building environment (scenario + HD map)...\n")
		start := time.Now()
		res, err := scenario.Run(spec, autoware.Detector(*detector), *duration)
		if err != nil {
			fatal(err)
		}
		res.WriteReport(w)
		fmt.Fprintf(os.Stderr, "done in %.1fs\n", time.Since(start).Seconds())
		return
	}

	fmt.Fprintf(os.Stderr, "building environment (scenario + HD map)...\n")
	start := time.Now()
	c, err := core.NewCharacterizer(*duration)
	if err != nil {
		fatal(err)
	}
	c.SetWorkers(*workers)
	c.SetGuard(*guard)
	fmt.Fprintf(os.Stderr, "environment ready in %.1fs; simulating %v per configuration (%d workers)\n",
		time.Since(start).Seconds(), *duration, *workers)

	if *exp == "all" {
		if err := c.RunAll(w); err != nil {
			fatal(err)
		}
		findings, err := c.Findings()
		if err != nil {
			fatal(err)
		}
		fmt.Fprintln(w, "\n=== Findings ===")
		for _, f := range findings {
			fmt.Fprintln(w, f)
		}
	} else if *exp == "findings" {
		findings, err := c.Findings()
		if err != nil {
			fatal(err)
		}
		for _, f := range findings {
			fmt.Fprintln(w, f)
		}
	} else {
		if err := c.RunExperiment(w, *exp); err != nil {
			fatal(err)
		}
	}
	if *csvDir != "" {
		if err := c.WriteCSV(*csvDir); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "raw data exported to %s\n", *csvDir)
	}
	fmt.Fprintf(os.Stderr, "done in %.1fs\n", time.Since(start).Seconds())
}

// writeTuneReport renders the search in the report house style: the
// baseline, the winner, and every candidate with its verdict.
func writeTuneReport(w io.Writer, rep *scenario.TuneReport) {
	fmt.Fprintf(w, "=== Scheduler auto-tune: %s (%.0fs drive, search seed %d) ===\n",
		rep.Scenario, rep.DurationSeconds, rep.SearchSeed)
	fmt.Fprintf(w, "budget: %.0f ms end-to-end\n\n", rep.BudgetMS)
	fmt.Fprintf(w, "%-28s %-22s %9s %9s %8s %s\n", "candidate", "worst path", "p50(ms)", "p99(ms)", "samples", "verdict")
	for _, c := range rep.Candidates {
		verdict := "ok"
		switch {
		case c.Error != "":
			verdict = "error: " + c.Error
		case !c.Feasible:
			verdict = "infeasible (gutted samples)"
		case c.Name == rep.Best.Name:
			verdict = "BEST"
		}
		fmt.Fprintf(w, "%-28s %-22s %9.2f %9.2f %8d %s\n", c.Name, c.Path, c.P50, c.P99, c.Samples, verdict)
	}
	fmt.Fprintf(w, "\nbaseline p99 %.2f ms -> tuned p99 %.2f ms (%.1f%% improvement)\n",
		rep.Baseline.P99, rep.Best.P99, rep.P99ImprovementPct)
	fmt.Fprintf(w, "winning knobs: priorities=%t shed=%dms max_inflight=%d queue_depth=%d\n",
		rep.Best.Priorities, rep.Best.ShedMS, rep.Best.MaxInflight, rep.Best.QueueDepth)
}

// writeSearchReport renders the adversarial search in the same house
// style as the tuner: baseline, worst case, and every candidate with
// its verdict.
func writeSearchReport(w io.Writer, rep *search.Report) {
	fmt.Fprintf(w, "=== Adversarial latency search: %s space (%.0fs drive, search seed %d, %s) ===\n",
		rep.Space, rep.DurationSeconds, rep.SearchSeed, rep.Detector)
	fmt.Fprintf(w, "budget: %.0f ms end-to-end; %d candidates\n\n", rep.BudgetMS, rep.Budget)
	fmt.Fprintf(w, "%-18s %-22s %9s %9s %8s %-22s %s\n",
		"candidate", "worst path", "p50(ms)", "p99(ms)", "samples", "top node (share)", "verdict")
	for _, c := range rep.Candidates {
		verdict := "ok"
		switch {
		case c.Error != "":
			verdict = "error: " + c.Error
		case !c.Feasible:
			verdict = "infeasible (gutted samples)"
		case c.Name == rep.Worst.Name && c.Violation:
			verdict = "WORST (budget violation)"
		case c.Name == rep.Worst.Name:
			verdict = "WORST"
		case c.Violation:
			verdict = "budget violation"
		}
		top := ""
		if c.TopNode != "" {
			top = fmt.Sprintf("%s (%.0f%%)", c.TopNode, 100*c.TopShare)
		}
		fmt.Fprintf(w, "%-18s %-22s %9.2f %9.2f %8d %-22s %s\n",
			c.Name, c.Path, c.P50, c.P99, c.Samples, top, verdict)
	}
	fmt.Fprintf(w, "\nbaseline p99 %.2f ms -> worst p99 %.2f ms (+%.1f%%), %d budget violation(s)\n",
		rep.Baseline.P99, rep.Worst.P99, rep.P99InflationPct, rep.Violations)
	fmt.Fprintf(w, "worst world: %s\n", rep.Worst.Params)
	for _, f := range rep.Worst.Faults {
		fmt.Fprintf(w, "worst fault: %s\n", f)
	}
}

// writeBench serializes a search/tune report to its JSON artifact.
func writeBench(name string, rep any) {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(name, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "search results written to %s\n", name)
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "characterize:", err)
	os.Exit(1)
}
