// Command avsim runs the full stack (optionally with the planning and
// motion layers) on the synthetic drive and reports what the vehicle
// perceives: localization quality, tracked objects, and the latency
// posture of the pipeline.
//
// Usage:
//
//	avsim [-detector SSD512|SSD300|YOLOv3-416] [-duration 30s]
//	      [-planning] [-status 5s] [-workers N] [-faults <scenario>]
//	      [-supervise] [-shed 100ms] [-guard] [-sched]
//	      [-world "<params>"] [-gen <seed>] [-space default|compact]
//
// avsim drives a single stack, so -workers (default: the number of
// CPUs) bounds the host threads used by intra-frame shard loops (voxel
// hashing, k-d tree builds, ray-ground sector sorts). Virtual-time
// results are identical for any worker count.
//
// -faults attaches a named chaos scenario (see internal/scenario): the
// seeded fault schedule perturbs the drive deterministically, the
// graceful-degradation watchdog substitutes for stalled nodes, and the
// final report includes injected events and degraded intervals.
//
// -supervise attaches the node-lifecycle supervision layer (restart
// with backoff + checkpoint restore; internal/supervise) and -shed
// arms deadline-aware load shedding with the given budget. Scenarios
// that request either (crash-recover, overload-shed) enable them
// automatically.
//
// -guard attaches the input-integrity layer (internal/guard): payload
// validation and time sanitization at the bus boundary; corrupted
// frames are quarantined and reported instead of reaching any node.
// Scenarios that request it (corrupt-lidar, clock-skew, dup-storm)
// enable it automatically. On clean input the guard changes nothing.
//
// -sched attaches the critical-path deadline scheduler (internal/sched)
// with the pinned contention-tuned knobs: earliest-origin-deadline
// dispatch, deadline shedding and a CPU admission cap. avsim drives a
// single stack, so there is no profiling leg to measure criticality on
// and the priority tie-break falls back to registration order; use
// `characterize -faults contention-tuned` (or -exp tune) for the fully
// profiled schedule. Scenarios that pin a schedule (contention-tuned)
// enable the scheduler automatically with their own knobs.
//
// -world drives a procedurally generated world instead of the scripted
// default: pass a params line (the world.MarshalParams codec — the
// string `characterize -exp search` reports as "worst world"). -gen
// generates one from a seed over the -space sampling space and prints
// its params line. Generated chaos scenarios (-faults gen-*) carry
// their own world and need neither flag.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/avstack"
	"repro/internal/faults"
	"repro/internal/parallel"
	"repro/internal/scenario"
	"repro/internal/world"
)

func main() {
	detector := flag.String("detector", "YOLOv3-416", "vision detector: SSD512, SSD300 or YOLOv3-416")
	duration := flag.Duration("duration", 30*time.Second, "virtual drive duration")
	planning := flag.Bool("planning", false, "run the planning and motion nodes too")
	status := flag.Duration("status", 5*time.Second, "status print interval (virtual time)")
	workers := flag.Int("workers", runtime.NumCPU(), "max host threads for intra-frame shard loops (results are identical for any value)")
	faultsFlag := flag.String("faults", "", "inject a named chaos scenario: "+strings.Join(scenario.Names(), ", "))
	supervise := flag.Bool("supervise", false, "attach the supervision layer (restart crashed/silent nodes with backoff + checkpoint restore)")
	shed := flag.Duration("shed", 0, "deadline-aware load shedding budget (0 disables): queued frames older than this are shed at dispatch")
	guardFlag := flag.Bool("guard", false, "attach the input-integrity guard (payload validation + time sanitization + quarantine)")
	schedFlag := flag.Bool("sched", false, "attach the critical-path deadline scheduler (EDF dispatch + deadline shedding + admission cap)")
	worldFlag := flag.String("world", "", "drive a generated world: a params line (see world.MarshalParams)")
	genFlag := flag.String("gen", "", "generate the world from this seed instead of the scripted default")
	spaceFlag := flag.String("space", "default", "sampling space for -gen: default or compact")
	flag.Parse()
	parallel.SetMaxWorkers(*workers)

	var spec scenario.Spec
	if *faultsFlag != "" {
		var err error
		spec, err = scenario.ByName(*faultsFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "avsim:", err)
			os.Exit(1)
		}
		if min := spec.MinDuration(); *duration < min {
			fmt.Fprintf(os.Stderr, "avsim: scenario %s needs -duration >= %v\n", spec.Name, min)
			os.Exit(1)
		}
	}

	// Resolve the drive parameterization: explicit params line, then a
	// generator seed, then whatever a generated chaos scenario carries.
	var wcfg *world.ScenarioConfig
	switch {
	case *worldFlag != "":
		c, err := world.ParseParams(*worldFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "avsim: -world:", err)
			os.Exit(1)
		}
		wcfg = &c
	case *genFlag != "":
		seed, err := strconv.ParseUint(*genFlag, 0, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "avsim: -gen %q is not a seed\n", *genFlag)
			os.Exit(1)
		}
		var sp world.ParamSpace
		switch *spaceFlag {
		case "default":
			sp = world.DefaultSpace()
		case "compact":
			sp = world.CompactSpace()
		default:
			fmt.Fprintf(os.Stderr, "avsim: unknown -space %q (have default, compact)\n", *spaceFlag)
			os.Exit(1)
		}
		c, err := world.Generate(sp, seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "avsim: -gen:", err)
			os.Exit(1)
		}
		wcfg = &c
	case spec.World != nil:
		wcfg = spec.World
	}
	if wcfg != nil {
		fmt.Printf("generated world: %s\n", world.MarshalParams(*wcfg))
	}

	fmt.Println("assembling stack (map synthesis takes a few seconds)...")
	sys, err := avstack.NewSystemWithOptions(avstack.Detector(*detector), avstack.Options{
		WithPlanning: *planning,
		Scenario:     wcfg,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "avsim:", err)
		os.Exit(1)
	}

	guarded := *guardFlag || spec.Guard
	if guarded {
		sys.EnableGuard(avstack.GuardConfig{})
		fmt.Println("input-integrity guard attached")
	}

	var injector *faults.Injector
	if *faultsFlag != "" {
		injector, err = faults.New(spec.Schedule())
		if err != nil {
			fmt.Fprintln(os.Stderr, "avsim:", err)
			os.Exit(1)
		}
		sys.AttachFaults(injector)
		if len(spec.Watch) > 0 {
			sys.AttachWatchdog(avstack.WatchdogConfig{
				Period:   spec.WatchPeriod,
				Policies: spec.Watch,
			})
		}
		fmt.Printf("chaos scenario %q armed:\n", spec.Name)
		for _, f := range spec.Faults {
			fmt.Printf("  %s\n", f)
		}
	}

	// Spec-requested supervision/shedding unless overridden by flags.
	if *supervise || spec.Supervise {
		// After AttachFaults, so the supervisor observes crash verdicts.
		if _, err := sys.Supervise(spec.Seed); err != nil {
			fmt.Fprintln(os.Stderr, "avsim:", err)
			os.Exit(1)
		}
		fmt.Println("supervision layer attached")
	}
	budget := *shed
	if budget == 0 {
		budget = spec.ShedBudget
	}
	if budget > 0 {
		sys.EnableShedding(budget)
		fmt.Printf("deadline shedding armed: budget=%v\n", budget)
	}
	if *schedFlag || spec.Sched != nil {
		knobs := scenario.ContentionTunedKnobs()
		if spec.Sched != nil {
			knobs = *spec.Sched
		}
		// Single-stack run: no profiling leg, so criticality is nil and
		// the priority tie-break degrades to registration order.
		sys.AttachScheduler(nil, knobs)
		fmt.Printf("deadline scheduler attached: priorities=%t shed=%v max_inflight=%d\n",
			knobs.UsePriorities, knobs.ShedBudget, knobs.MaxInflight)
	}

	for elapsed := time.Duration(0); elapsed < *duration; {
		step := *status
		if remaining := *duration - elapsed; remaining < step {
			step = remaining
		}
		sys.Run(step)
		elapsed += step

		pose, ok := sys.Pose()
		truth := sys.GroundTruthPose()
		fmt.Printf("t=%6.1fs ", sys.Now().Seconds())
		if ok {
			fmt.Printf("pose=(%.1f, %.1f) err=%.2fm ", pose.Pos.X, pose.Pos.Y, pose.XY().Dist(truth.XY()))
		} else {
			fmt.Printf("pose=<initializing> ")
		}
		objs := sys.TrackedObjects()
		fmt.Printf("tracks=%d", len(objs))
		shown := 0
		for _, o := range objs {
			if shown >= 3 {
				fmt.Printf(" ...")
				break
			}
			fmt.Printf(" [#%d %s v=%.1fm/s]", o.ID, o.Label, o.Velocity.Norm())
			shown++
		}
		fmt.Println()
	}

	fmt.Println("\n--- pipeline latency (ms) ---")
	for _, n := range sys.Nodes() {
		s := sys.NodeLatency(n)
		fmt.Printf("%-24s mean=%7.2f  q3=%7.2f  max=%8.2f  (n=%d)\n", n, s.Mean, s.Q3, s.Max, s.Count)
	}
	worst, e2e := sys.EndToEnd()
	fmt.Printf("\nend-to-end perception latency (worst path %s): mean %.1f ms, max %.1f ms\n",
		worst, e2e.Mean, e2e.Max)
	cpuW, gpuW := sys.MeanPower()
	fmt.Printf("mean power: CPU %.1f W + GPU %.1f W = %.1f W\n", cpuW, gpuW, cpuW+gpuW)

	if injector != nil {
		fmt.Println("\n--- injected faults ---")
		evs := injector.Events()
		if len(evs) == 0 {
			fmt.Println("(no perturbations applied)")
		}
		for _, e := range evs {
			fmt.Printf("%-10s %-34s count=%d\n", e.Kind, e.Target, e.Count)
		}
		fmt.Println("\n--- degraded intervals ---")
		degraded := sys.DegradedIntervals()
		if len(degraded) == 0 {
			fmt.Println("(none)")
		}
		for _, d := range degraded {
			end := "open"
			if d.End > 0 {
				end = d.End.String()
			}
			fmt.Printf("%-24s policy=%-10s [%v, %s) substituted=%d\n",
				d.Node, d.Policy, d.Start, end, d.Substituted)
		}
		fmt.Println("\n--- message drops ---")
		drops := sys.Drops()
		if len(drops) == 0 {
			fmt.Println("(none)")
		}
		for _, d := range drops {
			fmt.Printf("%-34s -> %-24s arrived=%-6d dropped=%-6d rate=%.3f\n",
				d.Topic, d.Subscriber, d.Arrived, d.Dropped, d.Rate)
		}

		fmt.Println("\n--- fault-induced message losses ---")
		losses := sys.FaultLosses()
		if len(losses) == 0 {
			fmt.Println("(none)")
		}
		for _, l := range losses {
			fmt.Printf("%-10s %-34s count=%-6d window=[%v, %v]\n",
				l.Kind, l.Target, l.Count, l.First, l.Last)
		}
	}

	if *supervise || spec.Supervise {
		fmt.Println("\n--- supervised outages ---")
		outages := sys.Outages()
		if len(outages) == 0 {
			fmt.Println("(none)")
		}
		for _, o := range outages {
			end := "open"
			if o.Recovered > 0 {
				end = o.Recovered.String()
			}
			fmt.Printf("%-24s cause=%-12s [%v, %s) restarts=%d lost=%d restored=%t ckpt_age=%v\n",
				o.Node, o.Cause, o.Detected, end, o.Restarts, o.FramesLost, o.Restored, o.CheckpointAge)
		}
	}

	if budget > 0 {
		fmt.Println("\n--- deadline-shed frames ---")
		any := false
		for _, t := range sys.Topics() {
			if t.Shed == 0 {
				continue
			}
			any = true
			fmt.Printf("%-34s shed=%-6d delivered=%-6d\n", t.Topic, t.Shed, t.Messages)
		}
		if !any {
			fmt.Println("(none)")
		}
	}

	if guarded {
		fmt.Println("\n--- integrity quarantine ---")
		events := sys.IntegrityEvents()
		if len(events) == 0 {
			fmt.Println("(none)")
		}
		for _, ev := range events {
			fmt.Printf("%-34s cause=%-18s at=%-8s count=%-6d window=[%v, %v]\n",
				ev.Topic, ev.Cause, ev.Point, ev.Count, ev.First, ev.Last)
		}
		for _, t := range sys.Topics() {
			if t.Quarantined == 0 {
				continue
			}
			fmt.Printf("%-34s quarantined=%-6d delivered=%-6d\n", t.Topic, t.Quarantined, t.Messages)
		}
	}
}
