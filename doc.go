// Package repro reproduces "Demystifying Power and Performance
// Bottlenecks in Autonomous Driving Systems" (Becker, Arnau, González,
// IISWC 2020) as a Go library: the full Autoware-style perception stack
// over a ROS-like middleware, a discrete-event hardware platform that
// stands in for the paper's CPU/GPU testbed, and a characterization
// harness that regenerates every table and figure of the evaluation.
//
// The public API lives in repro/avstack; the per-artifact benchmarks in
// bench_test.go regenerate the paper's tables and figures.
package repro
