package repro_test

// One benchmark per table and figure of the paper's evaluation, plus
// ablation benches for the design choices DESIGN.md calls out. Each
// benchmark iteration regenerates its artifact from a deterministic
// short drive and reports the artifact's headline numbers as custom
// metrics, so `go test -bench=.` doubles as a results dashboard.

import (
	"io"
	"sync"
	"testing"
	"time"

	"repro/internal/autoware"
	"repro/internal/experiments"
	"repro/internal/world"
)

// worldScenario builds the scenario a tweaked config describes.
func worldScenario(cfg autoware.Config) *world.Scenario {
	return world.NewScenario(cfg.Scenario)
}

// benchDrive is the virtual duration per configuration in benches —
// long enough for stable distributions, short enough to iterate.
const benchDrive = 12 * time.Second

var (
	envOnce sync.Once
	env     *experiments.Env
	envErr  error
)

func benchEnv(b *testing.B) *experiments.Env {
	b.Helper()
	envOnce.Do(func() { env, envErr = experiments.NewEnv() })
	if envErr != nil {
		b.Fatal(envErr)
	}
	return env
}

// runExperiment executes one experiment harness per iteration.
func runExperiment(b *testing.B, fn func(io.Writer, *experiments.Runs) error) *experiments.Runs {
	e := benchEnv(b)
	var runs *experiments.Runs
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runs = experiments.NewRuns(e, benchDrive)
		if err := fn(io.Discard, runs); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	return runs
}

// BenchmarkPrewarmWorkers runs the full configuration matrix (3 full +
// 3 saturated + 2 standalone stacks) serially and with 4 workers. The
// wall-clock ratio between the sub-benchmarks is the engine's speedup;
// the virtual-time results are identical (see
// TestParallelRunsAreByteIdentical in internal/experiments).
func BenchmarkPrewarmWorkers(b *testing.B) {
	for _, workers := range []int{1, 4} {
		workers := workers
		b.Run(map[int]string{1: "workers1", 4: "workers4"}[workers], func(b *testing.B) {
			e := benchEnv(b)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runs := experiments.NewRuns(e, benchDrive)
				runs.Workers = workers
				if err := runs.Prewarm(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig5SingleNodeLatency regenerates Figure 5 and reports the
// three detectors' mean latencies.
func BenchmarkFig5SingleNodeLatency(b *testing.B) {
	runs := runExperiment(b, experiments.Fig5)
	for _, det := range autoware.Detectors() {
		s, err := runs.Full(det)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(s.Recorder.NodeLatency("vision_detection").Mean, "ms-vision-"+string(det))
	}
}

// BenchmarkTable3DroppedMessages regenerates Table III and reports the
// saturated-regime SSD512 image drop rate.
func BenchmarkTable3DroppedMessages(b *testing.B) {
	runExperiment(b, experiments.Table3)
}

// BenchmarkFig6EndToEnd regenerates Figure 6 and reports the worst-path
// mean and max with SSD512.
func BenchmarkFig6EndToEnd(b *testing.B) {
	runs := runExperiment(b, experiments.Fig6)
	s, err := runs.Full(autoware.DetectorSSD512)
	if err != nil {
		b.Fatal(err)
	}
	_, e2e := s.Recorder.EndToEnd()
	b.ReportMetric(e2e.Mean, "ms-e2e-mean")
	b.ReportMetric(e2e.Max, "ms-e2e-max")
}

// BenchmarkTable5Utilization regenerates Table V and reports total CPU
// utilization with SSD512.
func BenchmarkTable5Utilization(b *testing.B) {
	runs := runExperiment(b, experiments.Table5)
	s, err := runs.Full(autoware.DetectorSSD512)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(100*s.Sampler.MeanCPUUtil(), "pct-cpu-util")
	b.ReportMetric(100*s.Sampler.MeanGPUUtil(), "pct-gpu-util")
}

// BenchmarkTable6Power regenerates Table VI and reports total power per
// configuration.
func BenchmarkTable6Power(b *testing.B) {
	runs := runExperiment(b, experiments.Table6)
	for _, det := range autoware.Detectors() {
		s, err := runs.Full(det)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(s.Sampler.MeanCPUPower()+s.Sampler.MeanGPUPower(), "W-total-"+string(det))
	}
}

// BenchmarkTable7Microarch regenerates Table VII (cache + branch
// simulation for the six critical nodes).
func BenchmarkTable7Microarch(b *testing.B) {
	runExperiment(b, experiments.Table7)
}

// BenchmarkFig7InstructionMix regenerates Figure 7.
func BenchmarkFig7InstructionMix(b *testing.B) {
	runExperiment(b, experiments.Fig7)
}

// BenchmarkFig8StandaloneVsFull regenerates Figure 8 and reports the
// SSD512 standalone-vs-full stddev ratio (Finding 5's headline).
func BenchmarkFig8StandaloneVsFull(b *testing.B) {
	runs := runExperiment(b, experiments.Fig8)
	alone, err := runs.Standalone(autoware.DetectorSSD512)
	if err != nil {
		b.Fatal(err)
	}
	full, err := runs.Full(autoware.DetectorSSD512)
	if err != nil {
		b.Fatal(err)
	}
	sa := alone.Recorder.NodeLatency("vision_detection")
	sf := full.Recorder.NodeLatency("vision_detection")
	if sa.StdDev > 0 {
		b.ReportMetric(sf.StdDev/sa.StdDev, "x-stddev-ratio")
	}
}

// runConfigured runs one full stack with a tweaked config and returns it.
func runConfigured(b *testing.B, mutate func(*autoware.Config)) *autoware.Stack {
	b.Helper()
	b.ReportAllocs()
	e := benchEnv(b)
	cfg := autoware.DefaultConfig(autoware.DetectorSSD512)
	mutate(&cfg)
	s, err := autoware.BuildWithMap(cfg, e.Scenario, e.Map)
	if err != nil {
		b.Fatal(err)
	}
	s.Run(benchDrive)
	return s
}

// BenchmarkAblationQueueDepth sweeps the detector's input queue depth:
// deeper queues trade drops for latency (stale frames queue up).
func BenchmarkAblationQueueDepth(b *testing.B) {
	for _, depth := range []int{1, 3, 8} {
		depth := depth
		b.Run(map[int]string{1: "depth1", 3: "depth3", 8: "depth8"}[depth], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := runConfigured(b, func(c *autoware.Config) {
					c.VisionQueueDepth = depth
					c.CameraRate = 13.5 // saturate the detector
				})
				lat := s.Recorder.NodeLatency("vision_detection")
				b.ReportMetric(lat.Mean, "ms-vision-mean")
				for _, r := range s.Bus.DropReports() {
					if r.Topic == "/image_raw" {
						b.ReportMetric(100*r.Rate, "pct-image-drops")
					}
				}
			}
		})
	}
}

// BenchmarkAblationCoreCount sweeps the CPU core count: the headroom
// behind Finding 3 versus the contention behind Finding 1.
func BenchmarkAblationCoreCount(b *testing.B) {
	for _, cores := range []int{2, 3, 6} {
		cores := cores
		b.Run(map[int]string{2: "cores2", 3: "cores3", 6: "cores6"}[cores], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := runConfigured(b, func(c *autoware.Config) { c.CPU.Cores = cores })
				_, e2e := s.Recorder.EndToEnd()
				b.ReportMetric(e2e.Mean, "ms-e2e-mean")
				b.ReportMetric(e2e.Max, "ms-e2e-max")
			}
		})
	}
}

// BenchmarkAblationGPUChannels compares the CUDA default-stream FIFO
// against two-way kernel concurrency: the clusterer stops queueing
// behind detector inference.
func BenchmarkAblationGPUChannels(b *testing.B) {
	for _, ch := range []int{1, 2} {
		ch := ch
		b.Run(map[int]string{1: "fifo", 2: "dual"}[ch], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := runConfigured(b, func(c *autoware.Config) { c.GPU.Channels = ch })
				b.ReportMetric(s.Recorder.NodeLatency("euclidean_cluster").P99, "ms-euclid-p99")
			}
		})
	}
}

// BenchmarkAblationVoxelLeaf sweeps the downsampling leaf: smaller
// leaves feed NDT more points (higher localization cost).
func BenchmarkAblationVoxelLeaf(b *testing.B) {
	for _, leaf := range []float64{1.0, 2.0, 3.0} {
		leaf := leaf
		b.Run(map[float64]string{1.0: "leaf1m", 2.0: "leaf2m", 3.0: "leaf3m"}[leaf], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := runConfigured(b, func(c *autoware.Config) { c.VoxelLeaf = leaf })
				b.ReportMetric(s.Recorder.NodeLatency("ndt_matching").Mean, "ms-ndt-mean")
			}
		})
	}
}

// BenchmarkAblationTrafficDensity sweeps the scene's traffic volume:
// the object-dependent nodes (clustering, tracking, costmap_obj) grow
// with scene content — the source of their latency variability in
// Fig. 5 — while scene-independent nodes stay flat.
func BenchmarkAblationTrafficDensity(b *testing.B) {
	for _, mult := range []int{0, 1, 3} {
		mult := mult
		b.Run(map[int]string{0: "empty", 1: "normal", 3: "rush"}[mult], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				// Denser traffic needs its own scenario (same city, so
				// the cached map stays valid).
				e := benchEnv(b)
				cfg := autoware.DefaultConfig(autoware.DetectorSSD300)
				cfg.Scenario.NumCars *= mult
				cfg.Scenario.NumPedestrians *= mult
				cfg.Scenario.NumCyclists *= mult
				scen := worldScenario(cfg)
				s, err := autoware.BuildWithMap(cfg, scen, e.Map)
				if err != nil {
					b.Fatal(err)
				}
				// Longer window than the other benches: traffic
				// encounters need driving distance to accumulate.
				s.Run(3 * benchDrive)
				b.ReportMetric(s.Recorder.NodeLatency("costmap_generator_obj").P99, "ms-costmapObj-p99")
				b.ReportMetric(s.Recorder.NodeLatency("imm_ukf_pda_tracker").Mean, "ms-tracker-mean")
			}
		})
	}
}

// BenchmarkAblationLiDARBeams sweeps the scanner's beam count: denser
// clouds raise every point-driven node's cost (the sensing-resolution
// versus compute trade).
func BenchmarkAblationLiDARBeams(b *testing.B) {
	for _, beams := range []int{8, 16, 32} {
		beams := beams
		b.Run(map[int]string{8: "beams8", 16: "beams16", 32: "beams32"}[beams], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := runConfigured(b, func(c *autoware.Config) { c.LiDAR.Beams = beams })
				b.ReportMetric(s.Recorder.NodeLatency("ray_ground_filter").Mean, "ms-rayground-mean")
				b.ReportMetric(s.Recorder.NodeLatency("ndt_matching").Mean, "ms-ndt-mean")
			}
		})
	}
}

// BenchmarkAblationScheduling compares processor-sharing against
// FIFO run-to-completion CPU scheduling: PS amortizes queueing across
// tasks, FIFO isolates short tasks behind long ones.
func BenchmarkAblationScheduling(b *testing.B) {
	for _, fifo := range []bool{false, true} {
		fifo := fifo
		name := "ps"
		if fifo {
			name = "fifo"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := runConfigured(b, func(c *autoware.Config) { c.CPU.FIFO = fifo })
				_, e2e := s.Recorder.EndToEnd()
				b.ReportMetric(e2e.P99, "ms-e2e-p99")
			}
		})
	}
}
