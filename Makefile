# Convenience targets for the reproduction repo. Everything is plain
# `go` tooling; the Makefile only fixes the invocations.

GO ?= go

.PHONY: build test race vet bench-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-check the library packages, including the parallel experiment
# engine and the intra-frame shard loops.
race:
	$(GO) test -race -timeout 15m ./internal/...

vet:
	$(GO) vet ./...

# Quick allocation/latency smoke over the hot-path micro-benches.
bench-smoke:
	$(GO) test -run=NONE -bench='BenchmarkVoxelGrid|BenchmarkKDTreeBuild|BenchmarkKDTreeRadius' -benchmem -benchtime=10x ./internal/pointcloud/
	$(GO) test -run=NONE -bench='BenchmarkCluster' -benchmem -benchtime=10x ./internal/nodes/lidardet/
