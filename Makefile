# Convenience targets for the reproduction repo. Everything is plain
# `go` tooling; the Makefile only fixes the invocations.

GO ?= go

.PHONY: build test race vet bench-smoke fuzz-smoke chaos-smoke corruption-smoke bench-middleware bus-stress sched-smoke search-smoke fleet-smoke journal-smoke docs-lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-check the library packages, including the parallel experiment
# engine and the intra-frame shard loops.
race:
	$(GO) test -race -timeout 15m ./internal/...

vet:
	$(GO) vet ./...

# Short fuzzing pass over the repo's codecs: rosbag, ring, guard
# payloads, and the scenario-params line (seed corpora are checked in
# under each package's testdata/fuzz). Go allows one -fuzz target per
# invocation, so each target gets its own ~10s run.
fuzz-smoke:
	$(GO) test -run=NONE -fuzz=FuzzBagDecode -fuzztime=10s ./internal/ros/
	$(GO) test -run=NONE -fuzz=FuzzBagRoundTrip -fuzztime=10s ./internal/ros/
	$(GO) test -run=NONE -fuzz=FuzzRingPushPop -fuzztime=10s ./internal/ros/
	$(GO) test -run=NONE -fuzz=FuzzGuardValidate -fuzztime=10s ./internal/guard/
	$(GO) test -run=NONE -fuzz=FuzzScenarioParams -fuzztime=10s ./internal/world/
	$(GO) test -run=NONE -fuzz=FuzzJournalDecode -fuzztime=10s ./internal/journal/

# Run every built-in chaos scenario end to end (baseline + faulted
# stack each) and throw the reports away — a crash in any injection,
# supervision or shedding path fails the target.
CHAOS_SCENARIOS = contention camera-stall lidar-drop sensor-jitter queue-burst crash-recover overload-shed contention-tuned
chaos-smoke:
	@for s in $(CHAOS_SCENARIOS); do \
		echo "==> $$s"; \
		$(GO) run ./cmd/characterize -faults $$s -duration 12s -out /dev/null || exit 1; \
	done

# Run the adversarial-input scenarios end to end with the integrity
# guard attached — a panic anywhere in validation, time sanitization or
# quarantine accounting fails the target — then prove the guard does no
# harm on clean input (byte-identical guarded vs unguarded run) and
# that its accept path stays allocation-free.
CORRUPTION_SCENARIOS = corrupt-lidar clock-skew dup-storm
corruption-smoke:
	@for s in $(CORRUPTION_SCENARIOS); do \
		echo "==> $$s"; \
		$(GO) run ./cmd/characterize -faults $$s -duration 12s -out /dev/null || exit 1; \
	done
	$(GO) test -run='TestGuardCleanRunByteIdentical' ./internal/scenario/
	$(GO) test -run='TestGuardAcceptPathZeroAlloc' ./internal/guard/

# Quick allocation/latency smoke over the hot-path micro-benches.
bench-smoke:
	$(GO) test -run=NONE -bench='BenchmarkVoxelGrid|BenchmarkKDTreeBuild|BenchmarkKDTreeRadius' -benchmem -benchtime=10x ./internal/pointcloud/
	$(GO) test -run=NONE -bench='BenchmarkCluster' -benchmem -benchtime=10x ./internal/nodes/lidardet/
	$(GO) test -run=NONE -bench='BenchmarkBusPublishFanout|BenchmarkQueuePush|BenchmarkRingSteadyState' -benchmem -benchtime=10x ./internal/ros/

# Middleware perf trajectory: measure the transport benches against the
# committed pre-rewrite baselines and refresh BENCH_middleware.json.
bench-middleware:
	$(GO) run ./cmd/benchmw -out BENCH_middleware.json

# Scheduler tail-latency closure: run the auto-tuner against the
# contention scenario (characterize exits non-zero if the elected
# schedule's p99 is worse than the no-scheduler baseline), then the
# regression pair — the pinned tuned schedule must beat plain
# contention's p99, and the scheduled trace must be bit-exact across
# worker counts. The JSON search record lands in BENCH_sched.json.
sched-smoke:
	$(GO) run ./cmd/characterize -exp tune -duration 12s -seed 1 -bench BENCH_sched.json -out /dev/null
	$(GO) test -count=1 -run='TestContentionTunedImprovesP99|TestSchedWorkerInvariance' ./internal/scenario/
	$(GO) test -count=1 ./internal/sched/

# Adversarial latency search smoke: run a tiny seeded search twice over
# the compact space (characterize exits non-zero if the elected worst
# case undercuts the baseline) and demand byte-identical JSON reports —
# the reproducibility contract behind every pinned gen-* scenario —
# plus the search/world/faults codec and generator test suites.
search-smoke:
	$(GO) run ./cmd/characterize -exp search -duration 7s -seed 3 -budget 3 -space compact -bench /tmp/search_a.json -out /dev/null
	$(GO) run ./cmd/characterize -exp search -duration 7s -seed 3 -budget 3 -space compact -bench /tmp/search_b.json -out /dev/null
	cmp /tmp/search_a.json /tmp/search_b.json
	$(GO) test -count=1 -short ./internal/search/
	$(GO) test -count=1 ./internal/world/ ./internal/faults/

# Fleet service smoke: the avfleet self-test drives a real loopback
# instance over HTTP — healthy jobs plus a byte-identical cache hit, a
# crash-then-recover retry, a crash-always dead letter, a past-deadline
# job, and queue saturation answered with an explicit 429 — and exits
# non-zero if any contract breaks or the service crashes. Then the
# package's chaos-isolation and retry-determinism tests (unaffected
# tenants byte-identical to solo runs with crashing/stalling neighbours).
fleet-smoke:
	$(GO) run ./cmd/avfleet -smoke
	$(GO) test -count=1 -run='TestFleetIsolationUnderChaos|TestFleetRetryDeterminism' ./internal/fleet/

# Durability smoke: the avfleet kill -9 self-test — spawn a journaled
# child, load it, SIGKILL it mid-flight, restart it on the same journal,
# and verify completed reports survived byte-identically, every admitted
# job is accounted for, queued work resumes and the pinned stall jobs
# dead-letter deterministically. Then the package's in-process crash
# recovery, torn-tail salvage and fair-share starvation tests.
journal-smoke:
	$(GO) run ./cmd/avfleet -journal-smoke
	$(GO) test -count=1 -run='TestFleetJournal|TestFairShareStarvation' ./internal/fleet/
	$(GO) test -count=1 ./internal/journal/

# Docs hygiene: formatting, vet, and a package comment on every
# internal package (godoc's first requirement for a readable map).
docs-lint:
	@fmt=$$(gofmt -l .); if [ -n "$$fmt" ]; then echo "gofmt -l flagged:"; echo "$$fmt"; exit 1; fi
	$(GO) vet ./...
	@missing=""; \
	for d in $$(find internal -type d ! -path '*testdata*'); do \
		ls $$d/*.go >/dev/null 2>&1 || continue; \
		grep -ls '^// Package ' $$d/*.go >/dev/null || missing="$$missing $$d"; \
	done; \
	if [ -n "$$missing" ]; then echo "missing package comment in:$$missing"; exit 1; fi
	@echo "docs-lint clean"

# Hammer the MPSC shim and the lock-free ring under the race detector:
# concurrent producers plus the burst-generator republish path on a
# shared bus, then the queue-burst chaos scenario end to end.
bus-stress:
	$(GO) test -race -count=1 -run='TestBusStressConcurrentBurst|TestQueueConcurrent|TestRingSPSCConcurrent' ./internal/ros/
	$(GO) test -race -count=1 -run='TestExecutorPoolDrainsToZero' ./internal/platform/
	$(GO) run ./cmd/characterize -faults queue-burst -duration 12s -out /dev/null
