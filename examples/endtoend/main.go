// Endtoend: the computation-path methodology of the paper's Fig. 4/6.
// Every message carries its sensor-origin lineage through the graph, so
// the harness can measure each path from sensor input to final
// perception output — including queueing and transport, not just the
// sum of node compute times.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/avstack"
)

func main() {
	sys, err := avstack.NewSystem(avstack.DetectorSSD512)
	if err != nil {
		log.Fatal(err)
	}
	sys.Run(30 * time.Second)

	fmt.Println("computation paths (Table IV) over a 30 s drive with SSD512:")
	for _, p := range sys.Paths() {
		s := sys.PathLatency(p)
		fmt.Printf("  %-22s mean %7.2f ms   q3 %7.2f   p99 %7.2f   max %7.2f  (n=%d)\n",
			p, s.Mean, s.Q3, s.P99, s.Max, s.Count)
	}

	worst, e2e := sys.EndToEnd()
	fmt.Printf("\nend-to-end latency = worst path = %s\n", worst)
	fmt.Printf("  mean %.1f ms, p99 %.1f ms, max %.1f ms\n", e2e.Mean, e2e.P99, e2e.Max)

	// Contrast with the naive estimate the paper warns about: summing
	// node means along the vision path underestimates the measured path.
	chain := []string{"vision_detection", "range_vision_fusion", "imm_ukf_pda_tracker",
		"ukf_track_relay", "naive_motion_predict", "costmap_generator_obj"}
	sum := 0.0
	for _, n := range chain {
		sum += sys.NodeLatency(n).Mean
	}
	measured := sys.PathLatency("costmap_vision_obj")
	fmt.Printf("\nsum of node means along the vision path: %.1f ms\n", sum)
	fmt.Printf("measured end-to-end vision path mean:     %.1f ms (tail %.1f ms)\n",
		measured.Mean, measured.Max)
	fmt.Println("the difference is queueing + transport + contention — the part")
	fmt.Println("isolated profiling cannot see.")
}
