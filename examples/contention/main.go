// Contention: the paper's Findings 1/4/5 in one runnable experiment.
// Profile a vision detector standalone and inside the full system, and
// watch how co-running nodes inflate its mean latency and — much more —
// its variability; then show a co-runner's tail moving when only the
// detector choice changes.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/avstack"
)

const drive = 30 * time.Second

func main() {
	fmt.Println("== standalone vs full-system detector profiling ==")
	for _, det := range []avstack.Detector{avstack.DetectorSSD512, avstack.DetectorYOLOv3} {
		alone, err := avstack.NewSystemWithOptions(det, avstack.Options{VisionOnly: true})
		if err != nil {
			log.Fatal(err)
		}
		alone.Run(drive)
		sa := alone.NodeLatency("vision_detection")

		full, err := avstack.NewSystem(det)
		if err != nil {
			log.Fatal(err)
		}
		full.Run(drive)
		sf := full.NodeLatency("vision_detection")

		fmt.Printf("%-12s standalone: mean %6.2f ms (sd %.2f)   full system: mean %6.2f ms (sd %.2f)\n",
			det, sa.Mean, sa.StdDev, sf.Mean, sf.StdDev)
		fmt.Printf("%-12s -> mean +%.1f%%, stddev x%.1f when co-running with the rest of the stack\n",
			"", 100*(sf.Mean-sa.Mean)/sa.Mean, sf.StdDev/sa.StdDev)
	}

	fmt.Println("\n== co-runner tails move with the detector choice (Finding 1) ==")
	fmt.Println("euclidean_cluster never changed — only the vision detector did:")
	for _, det := range []avstack.Detector{avstack.DetectorSSD300, avstack.DetectorSSD512, avstack.DetectorYOLOv3} {
		sys, err := avstack.NewSystem(det)
		if err != nil {
			log.Fatal(err)
		}
		sys.Run(drive)
		s := sys.NodeLatency("euclidean_cluster")
		fmt.Printf("  with %-12s euclidean_cluster mean %6.2f ms, p99 %6.2f ms, max %6.2f ms\n",
			det, s.Mean, s.P99, s.Max)
	}
	fmt.Println("\nprofiling nodes in isolation would have missed all of this.")
}
