// Quality: perception correctness, not just speed. Run the stack with
// a lead vehicle and score the tracker's output against ground truth —
// recall, precision, label accuracy, track continuity and localization
// error. (The paper scopes detection quality out; a library you would
// actually adopt cannot.)
package main

import (
	"fmt"
	"log"
	"time"

	"repro/avstack"
)

func main() {
	fmt.Println("building system with a lead vehicle...")
	sys, err := avstack.NewSystemWithOptions(avstack.DetectorSSD300, avstack.Options{
		LeadVehicle: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	report := sys.RunScored(20*time.Second, 500*time.Millisecond)

	fmt.Printf("\nperception quality over %d scored frames:\n", report.Frames)
	fmt.Printf("  recall           %.1f%%   (nearby actors the stack perceived)\n", 100*report.Recall)
	fmt.Printf("  precision        %.1f%%   (perceived objects that were real actors)\n", 100*report.Precision)
	fmt.Printf("  label accuracy   %.1f%%   (of labeled matches)\n", 100*report.LabelAccuracy)
	fmt.Printf("  mean match dist  %.2f m  (perceived vs true position)\n", report.MeanMatchDist)
	fmt.Printf("  track switches   %d\n", report.IDSwitches)
	fmt.Printf("  localization     mean %.2f m, max %.2f m\n", report.MeanLocErr, report.MaxLocErr)

	fmt.Println("\nnote: precision counts LiDAR clusters of static structure (walls,")
	fmt.Println("poles) as false positives against the actor list — they are real")
	fmt.Println("obstacles the costmap must know about, but not traffic participants.")
}
