// Quickstart: assemble the full perception stack, drive for ten
// seconds of virtual time, and look at what the vehicle perceived and
// how long the pipeline took.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/avstack"
)

func main() {
	fmt.Println("building system (synthesizing the HD map takes a few seconds)...")
	sys, err := avstack.NewSystem(avstack.DetectorYOLOv3)
	if err != nil {
		log.Fatal(err)
	}

	sys.Run(10 * time.Second)

	// Where does the vehicle think it is, and how right is it?
	pose, ok := sys.Pose()
	truth := sys.GroundTruthPose()
	if ok {
		fmt.Printf("localized at (%.1f, %.1f), %.2f m from ground truth\n",
			pose.Pos.X, pose.Pos.Y, pose.XY().Dist(truth.XY()))
	}

	// What is it tracking?
	for _, obj := range sys.TrackedObjects() {
		fmt.Printf("track #%-3d %-10s at (%.1f, %.1f) moving %.1f m/s\n",
			obj.ID, obj.Label, obj.Position.X, obj.Position.Y, obj.Velocity.Norm())
	}

	// How long does perception take?
	fmt.Println("\nper-node latency (ms):")
	for _, n := range sys.Nodes() {
		s := sys.NodeLatency(n)
		fmt.Printf("  %-24s mean=%6.2f  max=%7.2f\n", n, s.Mean, s.Max)
	}
	worst, e2e := sys.EndToEnd()
	fmt.Printf("\nend-to-end perception latency (worst path: %s): mean %.1f ms, max %.1f ms\n",
		worst, e2e.Mean, e2e.Max)
	if e2e.Max > 100 {
		fmt.Println("the 100 ms reaction budget is exceeded at the tail — the paper's Finding 2")
	}
}
