// Powerbudget: Table V/VI in library form — compare the platform
// utilization and power cost of the three detector configurations over
// the same drive, the data behind the paper's observation that GPU-side
// algorithm choice is the big power lever.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/avstack"
)

func main() {
	const drive = 30 * time.Second
	fmt.Printf("%-12s %9s %9s %9s %9s %9s\n",
		"detector", "CPU util", "GPU util", "CPU W", "GPU W", "total W")
	type row struct {
		det   avstack.Detector
		total float64
	}
	var rows []row
	for _, det := range []avstack.Detector{avstack.DetectorSSD512, avstack.DetectorSSD300, avstack.DetectorYOLOv3} {
		sys, err := avstack.NewSystem(det)
		if err != nil {
			log.Fatal(err)
		}
		sys.Run(drive)
		cpuU, gpuU := sys.MeanUtilization()
		cpuW, gpuW := sys.MeanPower()
		fmt.Printf("%-12s %8.1f%% %8.1f%% %9.1f %9.1f %9.1f\n",
			det, 100*cpuU, 100*gpuU, cpuW, gpuW, cpuW+gpuW)
		rows = append(rows, row{det, cpuW + gpuW})

		if det == avstack.DetectorSSD512 {
			fmt.Println("  top platform consumers:")
			for i, r := range sys.Utilization() {
				if i >= 4 {
					break
				}
				fmt.Printf("    %-24s CPU %5.1f%%  GPU %5.1f%%\n", r.Node, 100*r.CPUShare, 100*r.GPUShare)
			}
		}
	}
	best, worst := rows[0], rows[0]
	for _, r := range rows[1:] {
		if r.total < best.total {
			best = r
		}
		if r.total > worst.total {
			worst = r
		}
	}
	fmt.Printf("\nswitching %s -> %s saves %.0f W (%.0f%%) — changing the GPU-side\n",
		worst.det, best.det, worst.total-best.total, 100*(worst.total-best.total)/worst.total)
	fmt.Println("algorithm moves total power far more than any CPU-side change.")
}
