package avstack

import (
	"time"

	"repro/internal/autoware"
	"repro/internal/nodes/localization"
	"repro/internal/nodes/tracking"
	"repro/internal/supervise"
	"repro/internal/trace"
)

// Supervision layer re-exports: the supervisor restarts crashed or
// silent nodes with exponential backoff and restores their last state
// checkpoint (see internal/supervise).
type (
	// Supervisor is the attached node-lifecycle supervision layer.
	Supervisor = supervise.Supervisor
	// SupervisorConfig tunes detection, backoff and checkpoint cadence.
	SupervisorConfig = supervise.Config
	// SupervisePolicy declares supervision for one node.
	SupervisePolicy = supervise.Policy
	// Checkpointer is the state snapshot/restore hook stateful nodes
	// implement for crash recovery.
	Checkpointer = supervise.Checkpointer
	// Outage is one recorded node outage: detection, restarts, frames
	// lost, recovery, and checkpoint restoration.
	Outage = trace.Outage
	// FaultLoss is one aggregate of fault-induced message losses.
	FaultLoss = trace.FaultLoss
)

// DefaultSupervision builds the standard supervision config for a
// stack: the stateful perception nodes (tracker, localizer) watched on
// their output topics with a 1 s liveness timeout and checkpointed for
// restore-on-restart.
func DefaultSupervision(stack *autoware.Stack, seed uint64) SupervisorConfig {
	cfg := SupervisorConfig{Seed: seed}
	if stack.Tracker != nil {
		cfg.Policies = append(cfg.Policies, SupervisePolicy{
			Node:            autoware.TrackerNodeName,
			Topic:           tracking.TopicObjects,
			LivenessTimeout: time.Second,
			Checkpoint:      stack.Tracker,
		})
	}
	if stack.NDT != nil {
		cfg.Policies = append(cfg.Policies, SupervisePolicy{
			Node:            autoware.LocalizerNodeName,
			Topic:           localization.TopicCurrentPose,
			LivenessTimeout: time.Second,
			Checkpoint:      stack.NDT,
		})
	}
	return cfg
}

// AttachDefaultSupervision wires the standard supervision layer into a
// stack. Attach any fault injector first: the supervisor's filter runs
// in front of the layers attached before it, which is how it observes
// their crash verdicts.
func AttachDefaultSupervision(stack *autoware.Stack, seed uint64) (*Supervisor, error) {
	sup, err := supervise.New(DefaultSupervision(stack, seed))
	if err != nil {
		return nil, err
	}
	sup.Attach(stack.Executor, stack.Bus, stack.Recorder)
	return sup, nil
}

// AttachSupervisor wires an explicitly configured supervision layer
// into the system. Call after AttachFaults and before Run.
func (s *System) AttachSupervisor(cfg SupervisorConfig) (*Supervisor, error) {
	sup, err := supervise.New(cfg)
	if err != nil {
		return nil, err
	}
	sup.Attach(s.stack.Executor, s.stack.Bus, s.stack.Recorder)
	return sup, nil
}

// Supervise wires the default supervision layer (see
// DefaultSupervision) into the system. Call after AttachFaults and
// before Run.
func (s *System) Supervise(seed uint64) (*Supervisor, error) {
	return AttachDefaultSupervision(s.stack, seed)
}

// EnableShedding turns on deadline-aware load shedding at the
// executor: a queued frame whose oldest sensor origin is older than
// the budget when dispatched is shed instead of processed, bounding
// queue-delay amplification under overload. Shed counts appear in
// Topics (TopicStats.Shed). Zero disables.
func (s *System) EnableShedding(budget time.Duration) {
	s.stack.Executor.ShedBudget = budget
}

// Outages returns recorded node outages (empty without an attached
// supervisor).
func (s *System) Outages() []Outage { return s.stack.Recorder.Outages() }

// FaultLosses returns aggregate fault-induced message losses (empty
// unless an injector with a loss recorder is attached; AttachFaults
// wires one).
func (s *System) FaultLosses() []FaultLoss { return s.stack.Recorder.FaultLosses() }
