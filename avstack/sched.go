package avstack

import (
	"repro/internal/autoware"
	"repro/internal/sched"
	"repro/internal/trace"
)

// Scheduler surface re-exports, keeping callers on the facade.
type (
	// SchedKnobs is the scheduler's tunable configuration.
	SchedKnobs = sched.Knobs
	// Criticality is a measured per-node critical-path profile.
	Criticality = sched.Criticality
	// Chain is one reconstructed end-to-end lineage chain.
	Chain = trace.Chain
	// ChainLog records lineage chains from executor completions.
	ChainLog = trace.ChainLog
)

// AttachChainLog installs lineage-chain recording on a stack's executor,
// closing chains on the standard Table IV paths with the stack's
// measurement warmup. The log is a pure observer — attaching it never
// changes a virtual-time sample — so it is safe on the profiling run
// whose measurements seed the scheduler.
func AttachChainLog(stack *autoware.Stack) *trace.ChainLog {
	cl := trace.NewChainLog(trace.StandardPaths())
	cl.Warmup = stack.Config.Warmup
	cl.Attach(stack.Executor)
	return cl
}

// AttachScheduler installs the critical-path deadline scheduler on a
// stack's executor: dispatch switches from FIFO to earliest-origin-
// deadline order with the profile's criticality as tie-break, plus the
// knobs' shedding budget and admission cap. crit may be nil (pure EDF).
// Attach before Run; the executor consults the policy at every dispatch.
func AttachScheduler(stack *autoware.Stack, crit *sched.Criticality, k sched.Knobs) *sched.Policy {
	pol := sched.NewPolicy(crit, k)
	stack.Executor.Sched = pol
	return pol
}

// AttachChainLog installs lineage recording on the system (see the
// stack-level helper for semantics).
func (s *System) AttachChainLog() *trace.ChainLog {
	return AttachChainLog(s.stack)
}

// AttachScheduler installs the deadline scheduler on the system (see
// the stack-level helper for semantics).
func (s *System) AttachScheduler(crit *Criticality, k SchedKnobs) {
	AttachScheduler(s.stack, crit, k)
}

// AnalyzeCriticality derives a criticality profile from recorded chains.
func AnalyzeCriticality(chains []Chain) *Criticality {
	return sched.Analyze(chains)
}
