package avstack

import (
	"strings"
	"testing"
	"time"
)

// One shared full system per test binary; construction synthesizes the
// map and is the dominant cost.
var shared *System

func system(t *testing.T) *System {
	t.Helper()
	if shared == nil {
		s, err := NewSystem(DetectorSSD300)
		if err != nil {
			t.Fatal(err)
		}
		s.Run(15 * time.Second)
		shared = s
	}
	return shared
}

func TestSystemEndToEndSurface(t *testing.T) {
	s := system(t)
	if len(s.Nodes()) < 10 {
		t.Errorf("nodes = %v", s.Nodes())
	}
	if s.NodeLatency("ndt_matching").Count == 0 {
		t.Error("no ndt samples")
	}
	if len(s.NodeSamples("ndt_matching")) == 0 {
		t.Error("no raw samples")
	}
	if len(s.Paths()) != 4 {
		t.Errorf("paths = %v", s.Paths())
	}
	worst, e2e := s.EndToEnd()
	if worst == "" || e2e.Count == 0 {
		t.Error("no end-to-end measurement")
	}
	if cpu, gpu := s.MeanPower(); cpu <= 0 || gpu <= 0 {
		t.Errorf("power = %v, %v", cpu, gpu)
	}
	if cpu, gpu := s.MeanUtilization(); cpu <= 0 || cpu > 1 || gpu < 0 || gpu > 1 {
		t.Errorf("utilization = %v, %v", cpu, gpu)
	}
	if len(s.Utilization()) < 5 {
		t.Error("utilization report too short")
	}
	if s.Now() < 15*time.Second {
		t.Errorf("now = %v", s.Now())
	}
	if share := s.CPUShare("vision_detection"); share <= 0 || share >= 1 {
		t.Errorf("vision cpu share = %v", share)
	}
}

func TestSystemPerceptionState(t *testing.T) {
	s := system(t)
	pose, ok := s.Pose()
	if !ok {
		t.Fatal("not localized after 15 s")
	}
	truth := s.GroundTruthPose()
	if pose.XY().Dist(truth.XY()) > 5 {
		t.Errorf("localization error %.1f m", pose.XY().Dist(truth.XY()))
	}
	if len(s.TrackedObjects()) == 0 {
		t.Error("no tracked objects")
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := NewSystemWithOptions(DetectorSSD300, Options{VisionOnly: true, WithPlanning: true}); err == nil {
		t.Error("conflicting options should fail")
	}
	if _, err := NewSystem(Detector("bogus")); err == nil {
		t.Error("bogus detector should fail")
	}
}

func TestCharacterizeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("characterize runs several full-system simulations")
	}
	var sb strings.Builder
	if err := Characterize(&sb, 8*time.Second); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Fig. 5", "Table III", "Fig. 6", "Table V", "Table VI", "Table VII", "Fig. 7", "Fig. 8", "Findings"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in characterization output", want)
		}
	}
}
