package avstack

import (
	"time"

	"repro/internal/autoware"
	"repro/internal/ros"
)

// FallbackPolicy selects what the watchdog does while a watched node's
// output is stale.
type FallbackPolicy string

// Fallback policies.
const (
	// FallbackLastGood republishes the last fresh output each check
	// period, keeping downstream consumers fed with (flagged) stale data.
	FallbackLastGood FallbackPolicy = "last-good"
	// FallbackSkipFrame publishes nothing: downstream consumers skip the
	// frames, and the degraded interval records the outage.
	FallbackSkipFrame FallbackPolicy = "skip-frame"
	// FallbackDegrade publishes the output of a cheaper path derived
	// from the last fresh output (Degrade hook; last-good when nil).
	FallbackDegrade FallbackPolicy = "degrade"
)

// WatchPolicy declares graceful degradation for one node: which output
// topic to watch for staleness, when to consider it stale, and what to
// substitute while it is.
type WatchPolicy struct {
	// Node names the watched node (reporting key).
	Node string
	// Topic is the node's output topic whose header stamps are watched.
	Topic string
	// Timeout declares the output stale when no fresh publication
	// arrived for this long.
	Timeout time.Duration
	// Policy selects the fallback behavior.
	Policy FallbackPolicy
	// Degrade derives the cheaper-path output from the last fresh
	// payload (FallbackDegrade only). Nil falls back to the payload
	// itself.
	Degrade func(lastGood any) any
}

// WatchdogConfig configures the degradation layer.
type WatchdogConfig struct {
	// Period is the staleness check (and substitution) cadence.
	// Defaults to 100 ms.
	Period time.Duration
	// Policies lists the watched nodes.
	Policies []WatchPolicy
}

// Watchdog is the graceful-degradation layer: it detects stale node
// outputs via header stamps, applies per-node fallback policies while
// the fault persists, and records recovery once fresh output resumes.
// Degraded intervals are surfaced through the stack's trace recorder.
type Watchdog struct {
	stack  *autoware.Stack
	period time.Duration
	states []*watchState
}

type watchState struct {
	policy WatchPolicy
	// seen is false until the first fresh publication; the watchdog
	// does not declare staleness before the node ever produced output.
	seen      bool
	lastFresh time.Duration
	lastSeq   uint64
	lastGood  any
	// pending marks payload pointers the watchdog itself published, so
	// their delivery is not mistaken for node recovery.
	pending  map[any]int
	degraded bool
}

// NewWatchdog builds the layer over an assembled stack. Call Attach to
// start it; policies with an empty topic or node are invalid and panic.
func NewWatchdog(stack *autoware.Stack, cfg WatchdogConfig) *Watchdog {
	period := cfg.Period
	if period <= 0 {
		period = 100 * time.Millisecond
	}
	w := &Watchdog{stack: stack, period: period}
	for _, p := range cfg.Policies {
		if p.Node == "" || p.Topic == "" || p.Timeout <= 0 {
			panic("avstack: watch policy needs node, topic and timeout")
		}
		w.states = append(w.states, &watchState{
			policy:  p,
			pending: make(map[any]int),
		})
	}
	return w
}

// Attach taps the bus and starts the periodic staleness check.
func (w *Watchdog) Attach() {
	w.stack.Bus.Tap(w.observeDeliver, nil)
	w.stack.Sim.After(w.period, w.tick)
}

// observeDeliver tracks fresh publications on watched topics,
// de-duplicating the per-subscription fan-out by sequence number and
// ignoring the watchdog's own substituted publications.
//
// Borrow contract: the pooled envelope is only valid for the duration
// of the tap; this method copies out the stamp and the payload pointer
// (payloads are never pooled or recycled, so lastGood stays valid) and
// must never retain m itself without m.Retain().
func (w *Watchdog) observeDeliver(sub *ros.Subscription, m *ros.Message) {
	for _, st := range w.states {
		if st.policy.Topic != sub.Topic || m.Header.Seq == st.lastSeq {
			continue
		}
		st.lastSeq = m.Header.Seq
		if n, ours := st.pending[m.Payload]; ours {
			if n <= 1 {
				delete(st.pending, m.Payload)
			} else {
				st.pending[m.Payload] = n - 1
			}
			continue // substitution, not recovery
		}
		st.seen = true
		st.lastFresh = m.Header.Stamp
		st.lastGood = m.Payload
	}
}

// tick runs one staleness check over every watched node.
func (w *Watchdog) tick() {
	now := w.stack.Sim.Now()
	rec := w.stack.Recorder
	for _, st := range w.states {
		if !st.seen {
			continue
		}
		stale := now-st.lastFresh > st.policy.Timeout
		switch {
		case stale:
			if !st.degraded {
				st.degraded = true
				rec.OnDegrade(st.policy.Node, string(st.policy.Policy), now)
			}
			w.substitute(st)
		case st.degraded:
			st.degraded = false
			rec.OnRecover(st.policy.Node, now)
		}
	}
	w.stack.Sim.After(w.period, w.tick)
}

// substitute publishes one fallback output per check period while
// degraded (except under skip-frame, which stays silent).
func (w *Watchdog) substitute(st *watchState) {
	if st.policy.Policy == FallbackSkipFrame || st.lastGood == nil {
		return
	}
	payload := st.lastGood
	if st.policy.Policy == FallbackDegrade && st.policy.Degrade != nil {
		payload = st.policy.Degrade(st.lastGood)
	}
	st.pending[payload]++
	w.stack.Executor.Publish(st.policy.Topic, payload)
	w.stack.Recorder.OnSubstitute(st.policy.Node)
}

// DegradedIntervals returns the recorded degradation windows.
func (w *Watchdog) DegradedIntervals() []DegradedInterval {
	return w.stack.Recorder.DegradedIntervals()
}
