// Package avstack is the public API of the reproduction: it assembles
// the full Autoware-style perception stack (synthetic drive, sensors,
// every perception node) on the simulated platform, runs it, and
// exposes the measurements the paper's characterization is built from —
// per-node latency distributions, end-to-end computation paths,
// utilization, power, message drops — plus the one-call characterizer
// that regenerates every table and figure.
//
// Quick start:
//
//	sys, err := avstack.NewSystem(avstack.DetectorSSD512)
//	if err != nil { ... }
//	sys.Run(30 * time.Second)
//	fmt.Println(sys.NodeLatency("ndt_matching"))
package avstack

import (
	"fmt"
	"io"
	"time"

	"repro/internal/autoware"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/faults"
	"repro/internal/geom"
	"repro/internal/mathx"
	"repro/internal/msgs"
	"repro/internal/power"
	"repro/internal/ros"
	"repro/internal/trace"
	"repro/internal/world"
)

// Detector selects the image-detection algorithm.
type Detector = autoware.Detector

// Detector choices, the paper's configuration axis.
const (
	DetectorSSD512 = autoware.DetectorSSD512
	DetectorSSD300 = autoware.DetectorSSD300
	DetectorYOLOv3 = autoware.DetectorYOLOv3
)

// Summary is a latency distribution summary (milliseconds).
type Summary = mathx.Summary

// Options tune system assembly beyond the defaults.
type Options struct {
	// LeadVehicle adds a car driving the ego's route just ahead — a
	// persistent perception target for quality evaluation.
	LeadVehicle bool
	// VisionOnly runs just the detector (the paper's isolated-profiling
	// mode).
	VisionOnly bool
	// WithPlanning adds the actuation-layer nodes.
	WithPlanning bool
	// CameraFPS overrides the camera rate (default 9.9).
	CameraFPS float64
	// Warmup overrides the measurement warmup (default 3 s).
	Warmup time.Duration
	// MapFile loads a prebuilt HD map (see cmd/mapbuilder) instead of
	// synthesizing one during construction.
	MapFile string
	// Scenario overrides the whole drive parameterization with a
	// procedurally generated (or hand-built) world config — traffic mix,
	// pedestrian bursts, weather profile, city topology. Nil keeps the
	// scripted default. See world.Generate and world.ParseParams.
	Scenario *world.ScenarioConfig
}

// System is an assembled, runnable stack.
type System struct {
	stack *autoware.Stack
}

// NewSystem builds a full system with default options. Construction
// synthesizes the drive's HD map and takes a few seconds of wall time.
func NewSystem(det Detector) (*System, error) {
	return NewSystemWithOptions(det, Options{})
}

// NewSystemWithOptions builds a system with explicit options.
func NewSystemWithOptions(det Detector, opts Options) (*System, error) {
	cfg := autoware.DefaultConfig(det)
	if opts.VisionOnly && opts.WithPlanning {
		return nil, fmt.Errorf("avstack: VisionOnly and WithPlanning are mutually exclusive")
	}
	if opts.VisionOnly {
		cfg.Mode = autoware.ModeVisionStandalone
	}
	if opts.WithPlanning {
		cfg.Mode = autoware.ModeFullWithPlanning
	}
	if opts.CameraFPS > 0 {
		cfg.CameraRate = opts.CameraFPS
	}
	if opts.Warmup > 0 {
		cfg.Warmup = opts.Warmup
	}
	if opts.Scenario != nil {
		cfg.Scenario = *opts.Scenario
	}
	if opts.LeadVehicle {
		cfg.Scenario.LeadVehicle = true
	}
	cfg.MapFile = opts.MapFile
	stack, err := autoware.Build(cfg)
	if err != nil {
		return nil, err
	}
	return &System{stack: stack}, nil
}

// Run advances the drive by the given virtual duration (cumulative).
func (s *System) Run(d time.Duration) { s.stack.Run(d) }

// Now returns the current virtual time of the drive.
func (s *System) Now() time.Duration { return s.stack.Sim.Now() }

// Nodes returns the names of nodes with recorded latency samples.
func (s *System) Nodes() []string { return s.stack.Recorder.NodeNames() }

// NodeLatency returns the latency summary (ms) of one node.
func (s *System) NodeLatency(node string) Summary {
	return s.stack.Recorder.NodeLatency(node)
}

// NodeSamples returns the raw per-callback latencies (ms) of one node.
func (s *System) NodeSamples(node string) []float64 {
	return s.stack.Recorder.NodeSamples(node)
}

// Paths returns the computation path names (Table IV).
func (s *System) Paths() []string { return s.stack.Recorder.PathNames() }

// PathLatency returns the latency summary (ms) of one computation path.
func (s *System) PathLatency(path string) Summary {
	return s.stack.Recorder.PathLatency(path)
}

// EndToEnd returns the worst computation path and its summary — the
// paper's definition of perception end-to-end latency.
func (s *System) EndToEnd() (string, Summary) { return s.stack.Recorder.EndToEnd() }

// MeanPower returns the mean CPU and GPU power draw in watts.
func (s *System) MeanPower() (cpu, gpu float64) {
	return s.stack.Sampler.MeanCPUPower(), s.stack.Sampler.MeanGPUPower()
}

// MeanUtilization returns the mean CPU and GPU utilization in [0, 1].
func (s *System) MeanUtilization() (cpu, gpu float64) {
	return s.stack.Sampler.MeanCPUUtil(), s.stack.Sampler.MeanGPUUtil()
}

// Utilization returns per-node platform shares, highest CPU share first.
func (s *System) Utilization() []power.UtilizationRow {
	return s.stack.UtilizationReport()
}

// DegradedInterval is one recorded graceful-degradation window.
type DegradedInterval = trace.DegradedInterval

// AttachFaults wires a fault injector into the running system. Call
// before Run; the injector's schedule then perturbs the drive
// deterministically (see internal/faults). Message-losing verdicts
// (drop, crash) are recorded in the trace so reports can distinguish
// "dropped by an injected fault" from "never produced".
func (s *System) AttachFaults(in *faults.Injector) {
	in.SetLossRecorder(s.stack.Recorder)
	in.Attach(s.stack.Executor, s.stack.Bus)
}

// AttachWatchdog installs the graceful-degradation layer and starts it.
func (s *System) AttachWatchdog(cfg WatchdogConfig) *Watchdog {
	w := NewWatchdog(s.stack, cfg)
	w.Attach()
	return w
}

// DegradedIntervals returns recorded degradation windows (empty without
// an attached watchdog).
func (s *System) DegradedIntervals() []DegradedInterval {
	return s.stack.Recorder.DegradedIntervals()
}

// DropReport is one dropped-message statistic row.
type DropReport = ros.DropReport

// Drops returns per-subscription message-drop statistics.
func (s *System) Drops() []DropReport { return s.stack.Bus.DropReports() }

// TopicStats is one topic's traffic summary.
type TopicStats = ros.TopicStats

// Topics returns per-topic rate and bandwidth statistics.
func (s *System) Topics() []TopicStats { return s.stack.Bus.TopicStats() }

// PoolStats is the message pool's reference-count ledger.
type PoolStats = ros.PoolStats

// Pool returns the transport's envelope-pool statistics: envelopes
// ever acquired, currently live (with their outstanding references),
// and idle on the free list. LiveRefs minus queued messages bounds the
// envelopes held by in-flight callbacks and fusion caches — useful for
// leak detection in long soak runs.
func (s *System) Pool() PoolStats { return s.stack.Bus.PoolStats() }

// Pose returns the current localization estimate; ok is false before
// initialization.
func (s *System) Pose() (geom.Pose, bool) {
	if s.stack.NDT == nil {
		return geom.Pose{}, false
	}
	return s.stack.NDT.Pose()
}

// GroundTruthPose returns the true ego pose at the current time.
func (s *System) GroundTruthPose() geom.Pose {
	snap := s.stack.Scenario.At(s.stack.Sim.Now().Seconds())
	return snap.Ego.Pose
}

// TrackedObject is one confirmed track.
type TrackedObject struct {
	ID       int
	Label    string
	Position geom.Vec2
	Velocity geom.Vec2
}

// TrackedObjects returns the tracker's confirmed objects.
func (s *System) TrackedObjects() []TrackedObject {
	if s.stack.Tracker == nil {
		return nil
	}
	var out []TrackedObject
	for _, tr := range s.stack.Tracker.Tracks() {
		if !tr.Confirmed(3) {
			continue
		}
		out = append(out, TrackedObject{
			ID:       tr.ID,
			Label:    string(tr.Label),
			Position: tr.IMM.Pos(),
			Velocity: tr.IMM.Velocity(),
		})
	}
	return out
}

// CPUShare returns the fraction of a node's execution time spent on the
// CPU (vs GPU offload) — the Fig. 8 quantity.
func (s *System) CPUShare(node string) float64 {
	return s.stack.Recorder.CPUShare(node)
}

// Label constants for TrackedObject.Label.
const (
	LabelCar        = string(msgs.LabelCar)
	LabelTruck      = string(msgs.LabelTruck)
	LabelPedestrian = string(msgs.LabelPedestrian)
	LabelCyclist    = string(msgs.LabelCyclist)
	LabelUnknown    = string(msgs.LabelUnknown)
)

// QualityReport summarizes perception quality against ground truth.
type QualityReport = eval.Report

// RunScored advances the drive in steps of the given size, scoring the
// tracker's confirmed objects and the localization estimate against
// ground truth after each step, and returns the aggregate quality
// report. Use Options.LeadVehicle to guarantee a nearby target.
func (s *System) RunScored(total, step time.Duration) QualityReport {
	if step <= 0 {
		step = 500 * time.Millisecond
	}
	agg := eval.NewAggregate()
	for elapsed := time.Duration(0); elapsed < total; elapsed += step {
		s.Run(step)
		snap := s.stack.Scenario.At(s.stack.Sim.Now().Seconds())
		var objs []msgs.DetectedObject
		if s.stack.Tracker != nil {
			for _, tr := range s.stack.Tracker.Tracks() {
				if !tr.Confirmed(3) {
					continue
				}
				pos := tr.IMM.Pos()
				objs = append(objs, msgs.DetectedObject{
					ID: tr.ID, Label: tr.Label,
					Pose: geom.Pose{Pos: geom.V3(pos.X, pos.Y, 0)},
				})
			}
		}
		agg.AddFrame(eval.ScoreFrame(objs, &snap, 25, 5.0))
		if s.stack.NDT != nil {
			if pose, ok := s.stack.NDT.Pose(); ok {
				agg.AddLocalization(pose.XY().Dist(snap.Ego.Pose.XY()))
			}
		}
	}
	return agg.Report()
}

// Characterize runs the paper's full methodology — every table and
// figure — over a fresh environment with the given virtual drive
// duration per configuration, writing the report to w.
func Characterize(w io.Writer, duration time.Duration) error {
	c, err := core.NewCharacterizer(duration)
	if err != nil {
		return err
	}
	if err := c.RunAll(w); err != nil {
		return err
	}
	findings, err := c.Findings()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "\n=== Findings ===")
	for _, f := range findings {
		fmt.Fprintln(w, f)
	}
	return nil
}
