package avstack

import (
	"repro/internal/guard"
	"repro/internal/trace"
)

// Integrity-guard re-exports: the guard validates payloads and
// sanitizes timestamps at the bus boundary, quarantining corrupted
// frames before they reach any node (see internal/guard).
type (
	// Guard is the attached input-integrity layer.
	Guard = guard.Guard
	// GuardConfig tunes holdback, future tolerance, dup window and the
	// validator registry.
	GuardConfig = guard.Config
	// GuardCauseCount is one (topic, cause) quarantine counter.
	GuardCauseCount = guard.CauseCount
	// IntegrityEvent is one aggregated quarantine record from the trace.
	IntegrityEvent = trace.IntegrityEvent
)

// EnableGuard attaches an input-integrity guard with the given config
// (zero value takes defaults) and returns it. Call before Run. On
// clean input the guard changes nothing — reports stay byte-identical
// to an unguarded run.
func (s *System) EnableGuard(cfg GuardConfig) *Guard {
	g := guard.New(cfg)
	g.Attach(s.stack.Executor)
	s.stack.Guard = g
	return g
}

// IntegrityEvents returns the aggregated quarantine record (empty
// without an attached guard or on clean input).
func (s *System) IntegrityEvents() []IntegrityEvent {
	return s.stack.Recorder.IntegrityEvents()
}
